"""Tests for the telemetry subsystem: tracer, probes, exporters, and the
zero-perturbation / bounded-memory / deterministic-output contract."""

import json
from dataclasses import replace

import pytest

from repro.analysis.critical_path import critical_path_report, segment_requests
from repro.config import SimulationConfig, TelemetryConfig
from repro.core.experiment import run_server, run_server_raw
from repro.core.export import server_result_to_dict
from repro.core.presets import hardharvest_block, harvest_block
from repro.core.serialize import from_dict, to_dict
from repro.parallel.sweep import SweepPoint
from repro.sim.engine import Simulator
from repro.telemetry.export import write_perfetto_json, write_timeseries_csv
from repro.telemetry.tracer import (
    DEPTH_KINDS,
    PHASES,
    REQ_ARRIVAL,
    REQ_COMPLETE,
    REQ_DISPATCH,
    REQ_ENQUEUE,
    REQ_EXEC,
    Tracer,
)

FAST = SimulationConfig(horizon_ms=40.0, warmup_ms=8.0, accesses_per_segment=6)
TRACED = replace(FAST, telemetry=TelemetryConfig(enabled=True))


@pytest.fixture(scope="module")
def traced_sim():
    """One fully traced HardHarvest-Block run shared by the read-only tests."""
    return run_server_raw(hardharvest_block(), TRACED)


@pytest.fixture(scope="module")
def vm_names(traced_sim):
    names = {vm.vm_id: vm.name for vm in traced_sim.primary_vms}
    for hvm in traced_sim.harvest_vms:
        names[hvm.vm_id] = hvm.name
    return names


# ----------------------------------------------------------------------
# Engine probe side heap
# ----------------------------------------------------------------------
class TestEngineProbes:
    def test_probe_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_probe(5, lambda: None)

    def test_probes_do_not_count_as_events(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.schedule_probe(5, lambda: None)
        assert sim.pending_events == 1
        assert sim.pending_probes == 1

    def test_probe_fires_before_later_event(self):
        sim = Simulator()
        order = []
        sim.schedule(10, lambda: order.append("event"))
        sim.schedule_probe(5, lambda: order.append(f"probe@{sim.now}"))
        sim.run()
        assert order == ["probe@5", "event"]

    def test_self_rescheduling_probe_stops_at_last_event(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            sim.schedule_probe(sim.now + 10, tick)

        sim.schedule_probe(0, tick)
        sim.schedule(35, lambda: None)
        fired = sim.run()
        # Probes at 0/10/20/30 fire; the one pending at 40 never does,
        # and none of them count toward the fired-event total.
        assert ticks == [0, 10, 20, 30]
        assert fired == 1
        assert sim.pending_probes == 1


# ----------------------------------------------------------------------
# Ring buffer
# ----------------------------------------------------------------------
class TestTracer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(0)

    def test_ring_eviction_counts_drops(self):
        tr = Tracer(3)
        for ts in range(5):
            tr.emit(ts, REQ_ARRIVAL, req=ts)
        assert len(tr) == 3
        assert tr.dropped == 2
        # Oldest two evicted; survivors in chronological order.
        assert [e[0] for e in tr.events()] == [2, 3, 4]

    def test_no_drops_under_capacity(self):
        tr = Tracer(8)
        tr.emit(1, REQ_ARRIVAL, req=0)
        tr.emit(2, REQ_ENQUEUE, req=0, extra=1)
        assert tr.dropped == 0
        assert tr.events() == [(1, REQ_ARRIVAL, 0, -1, -1, 0),
                               (2, REQ_ENQUEUE, 0, -1, -1, 1)]


class TestTelemetryConfig:
    @pytest.mark.parametrize("bad", [
        {"max_events": 0},
        {"probe_interval_us": 0.0},
        {"max_probe_samples": -1},
    ])
    def test_rejects_non_positive_knobs(self, bad):
        with pytest.raises(ValueError):
            TelemetryConfig(**bad)

    def test_interval_ns(self):
        assert TelemetryConfig(probe_interval_us=50.0).probe_interval_ns == 50_000
        assert TelemetryConfig(probe_interval_us=0.0001).probe_interval_ns == 1


# ----------------------------------------------------------------------
# Zero perturbation: results bit-identical with telemetry on/off
# ----------------------------------------------------------------------
class TestZeroPerturbation:
    @pytest.mark.parametrize("preset", [hardharvest_block, harvest_block])
    def test_results_bit_identical_on_vs_off(self, preset):
        off = run_server(preset(), FAST)
        on = run_server(preset(), replace(FAST, telemetry=TelemetryConfig(enabled=True)))
        assert server_result_to_dict(on) == server_result_to_dict(off)

    def test_tiny_ring_does_not_perturb_results(self):
        off = run_server(hardharvest_block(), FAST)
        sim = run_server_raw(
            hardharvest_block(),
            replace(FAST, telemetry=TelemetryConfig(enabled=True, max_events=256)),
        )
        assert sim.tracer.dropped > 0
        assert len(sim.tracer) == 256
        from repro.core.experiment import summarize

        assert server_result_to_dict(summarize(sim)) == server_result_to_dict(off)

    def test_disabled_config_allocates_nothing(self):
        sim = run_server_raw(
            hardharvest_block(),
            replace(FAST, telemetry=TelemetryConfig(enabled=False)),
        )
        assert sim.tracer is None
        assert sim.probes is None


# ----------------------------------------------------------------------
# run_server_raw exposure (the docstring's promise)
# ----------------------------------------------------------------------
class TestRawExposure:
    def test_tracer_and_probes_exposed(self, traced_sim):
        assert traced_sim.tracer is not None
        assert traced_sim.probes is not None
        assert len(traced_sim.tracer) > 0
        assert traced_sim.tracer.dropped == 0
        assert len(traced_sim.probes) > 0


# ----------------------------------------------------------------------
# Span chains + exact critical-path tiling
# ----------------------------------------------------------------------
class TestCriticalPath:
    def test_phases_tile_latency_exactly(self, traced_sim):
        events = traced_sim.tracer.events()
        paths = segment_requests(events)
        completions = sum(1 for e in events if e[1] == REQ_COMPLETE)
        assert completions > 100
        assert len(paths) == completions
        for p in paths:
            assert sum(p.phases.values()) == p.total_ns  # exact, not approx
            assert p.phases["execution"] > 0

    def test_report_mentions_every_service(self, traced_sim, vm_names):
        primary = {vm.vm_id: vm.name for vm in traced_sim.primary_vms}
        report = critical_path_report(traced_sim.tracer.events(), primary)
        for name in primary.values():
            assert name in report
        for phase in PHASES:
            assert phase in report
        assert "all" in report

    def test_empty_stream_reports_zero_row(self):
        report = critical_path_report([], {})
        assert "all" in report


# ----------------------------------------------------------------------
# Probe series
# ----------------------------------------------------------------------
class TestProbes:
    def test_series_shape_and_bounds(self, traced_sim):
        probes = traced_sim.probes
        cols = probes.columns()
        n = len(probes)
        assert n > 100
        assert probes.dropped == 0
        assert all(len(series) == n for series in cols.values())
        interval = TRACED.telemetry.probe_interval_ns
        assert cols["time_ns"][0] == 0
        assert all(
            b - a == interval
            for a, b in zip(cols["time_ns"], cols["time_ns"][1:])
        )
        num_cores = len(traced_sim.cores)
        assert all(0 <= busy <= num_cores for busy in cols["busy_cores"])
        assert any(loaned > 0 for loaned in cols["loaned_cores"])
        assert all(0.0 <= r <= 1.0 for r in cols["l2_primary_hit_rate"])
        for vm in traced_sim.primary_vms:
            assert f"rq_depth/{vm.name}" in cols
            assert f"rq_overflow/{vm.name}" in cols

    def test_sample_cap_counts_drops(self):
        sim = run_server_raw(
            hardharvest_block(),
            replace(FAST, telemetry=TelemetryConfig(enabled=True,
                                                    max_probe_samples=10)),
        )
        assert len(sim.probes) == 10
        assert sim.probes.dropped > 0


# ----------------------------------------------------------------------
# Exporters: structure + byte-identical determinism
# ----------------------------------------------------------------------
class TestExport:
    def test_perfetto_contains_every_completed_request(
        self, traced_sim, vm_names, tmp_path
    ):
        events = traced_sim.tracer.events()
        path = tmp_path / "trace.json"
        n_te = write_perfetto_json(
            str(path), events, vm_names, len(traced_sim.cores)
        )
        trace = json.loads(path.read_text())
        te = trace["traceEvents"]
        assert n_te == len(te)

        completed = {e[2] for e in events if e[1] == REQ_COMPLETE}
        begun = {ev["id"] for ev in te if ev["ph"] == "b"}
        ended = {ev["id"] for ev in te if ev["ph"] == "e"}
        assert completed <= begun
        assert completed <= ended

        # Core slices exist for dispatch/exec activity, queue counters for
        # every depth-bearing kind, and the three process tracks are named.
        assert any(ev["ph"] == "X" and ev["pid"] == 1 for ev in te)
        assert any(ev["ph"] == "C" and ev["pid"] == 2 for ev in te)
        names = {
            ev["args"]["name"]
            for ev in te
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert names == {"cores", "queues", "requests"}

    def test_exports_byte_identical_across_runs(self, tmp_path):
        blobs = []
        for run in range(2):
            sim = run_server_raw(hardharvest_block(), TRACED)
            names = {vm.vm_id: vm.name for vm in sim.primary_vms}
            for hvm in sim.harvest_vms:
                names[hvm.vm_id] = hvm.name
            tp = tmp_path / f"trace{run}.json"
            cp = tmp_path / f"series{run}.csv"
            write_perfetto_json(str(tp), sim.tracer.events(), names,
                                len(sim.cores))
            write_timeseries_csv(str(cp), sim.probes)
            blobs.append((tp.read_bytes(), cp.read_bytes()))
        assert blobs[0] == blobs[1]

    def test_timeseries_csv_shape(self, traced_sim, tmp_path):
        path = tmp_path / "series.csv"
        rows = write_timeseries_csv(str(path), traced_sim.probes)
        lines = path.read_text().splitlines()
        assert rows == len(traced_sim.probes)
        assert len(lines) == rows + 1  # header
        header = lines[0].split(",")
        assert header[:3] == ["time_ns", "busy_cores", "loaned_cores"]

    def test_depth_kinds_cover_queue_counters(self, traced_sim):
        kinds = {e[1] for e in traced_sim.tracer.events()}
        assert REQ_ENQUEUE in kinds
        assert DEPTH_KINDS & kinds
        assert {REQ_ARRIVAL, REQ_DISPATCH, REQ_EXEC, REQ_COMPLETE} <= kinds


# ----------------------------------------------------------------------
# Config plumbing: serializer round trip + cache-key participation
# ----------------------------------------------------------------------
class TestConfigPlumbing:
    def test_serialize_round_trip(self):
        cfg = replace(
            FAST,
            telemetry=TelemetryConfig(enabled=True, max_events=1234,
                                      probe_interval_us=7.5,
                                      max_probe_samples=99),
        )
        assert from_dict(to_dict(cfg)) == cfg

    def test_telemetry_changes_cache_key_payload(self):
        system = hardharvest_block()
        plain = SweepPoint(label="a", system=system, sim=FAST)
        traced = SweepPoint(label="a", system=system, sim=TRACED)
        assert plain.payload() != traced.payload()
