"""Tests for the Section 6.8 storage/area/power accounting."""

import pytest

from repro.config import ControllerConfig, HierarchyConfig
from repro.hw.storage_cost import (
    compute_storage_report,
    qm_storage_bytes,
    rq_storage_bytes,
    shared_bit_bytes_per_core,
)


def test_rq_storage_matches_paper():
    """2048 entries x 66 bits = 16896 B."""
    assert rq_storage_bytes(ControllerConfig()) == pytest.approx(16896.0)


def test_qm_storage_matches_paper():
    """16 pairs x (16x8B regs + 24B RQ-Map + 5B HarvestMask)."""
    per_pair = 16 * 8 + 24 + 5
    assert qm_storage_bytes(ControllerConfig()) == pytest.approx(16 * per_pair)


def test_controller_total_is_paper_18_9_kb():
    report = compute_storage_report(ControllerConfig(), HierarchyConfig(), 36)
    assert report.controller_bytes / 1024 == pytest.approx(18.9, abs=0.2)


def test_shared_bit_inventory():
    """One bit per entry of L1 TLB (128) + L2 TLB (2048) + L1D lines (768)
    + L2 lines (8192) = 11136 bits = 1392 B per core."""
    per_core = shared_bit_bytes_per_core(HierarchyConfig())
    assert per_core == pytest.approx(1392.0)


def test_area_and_power_overheads_sub_percent():
    report = compute_storage_report(ControllerConfig(), HierarchyConfig(), 36)
    # Paper: 0.19% area, 0.16% power. Our McPAT-lite lands in the same
    # sub-half-percent regime.
    assert 0.0002 < report.area_overhead_fraction < 0.005
    assert report.power_overhead_fraction < report.area_overhead_fraction
    assert report.total_bytes == pytest.approx(
        report.controller_bytes + report.shared_bit_bytes_total
    )
