"""Concurrent-submission coverage: the satellite's three guarantees.

1. N parallel clients posting the *same* config converge on one job id
   and exactly one underlying execution;
2. differing configs run independently (distinct ids, all complete);
3. every digest handed back equals the direct runner's digest for that
   config.
"""

import concurrent.futures

import pytest

from repro.config import SimulationConfig
from repro.core.export import sweep_results_digest
from repro.core.presets import all_systems
from repro.parallel.runner import run_sweep
from repro.parallel.sweep import SweepSpec
from repro.service import ServiceClient, start_in_thread

TINY_SIM = {"horizon_ms": 12.0, "warmup_ms": 2.0, "accesses_per_segment": 3}


def sweep_body(seed: int):
    return {
        "kind": "sweep",
        "systems": "NoHarvest",
        "seeds": str(seed),
        "simulation": dict(TINY_SIM),
    }


def direct_digest(seed: int) -> str:
    spec = SweepSpec(
        systems={"NoHarvest": all_systems()["NoHarvest"]},
        seeds=(seed,),
        sim=SimulationConfig(**TINY_SIM),
    )
    return sweep_results_digest(run_sweep(spec).results)


@pytest.fixture()
def service(tmp_path):
    handle = start_in_thread(
        cache_dir=str(tmp_path / "cache"), service_workers=2, max_queue=32
    )
    try:
        yield handle
    finally:
        handle.stop()


def test_same_config_from_many_clients_runs_once(service):
    clients = [ServiceClient(port=service.port) for _ in range(6)]
    with concurrent.futures.ThreadPoolExecutor(6) as pool:
        responses = list(
            pool.map(lambda c: c.submit(sweep_body(seed=0)), clients)
        )

    ids = {r["job_id"] for r in responses}
    assert len(ids) == 1, "identical configs must dedupe to one job id"
    assert sum(1 for r in responses if r["created"]) == 1

    job_id = ids.pop()
    status = clients[0].wait(job_id, timeout_s=300)
    assert status["state"] == "done"
    # Exactly one underlying execution happened.
    assert service.service.manager.executions.count(job_id) == 1
    assert f"repro_service_deduped_total {len(clients) - 1}" in (
        clients[0].metrics()
    )
    assert clients[0].result(job_id)["digest"] == direct_digest(0)


def test_distinct_configs_run_independently(service):
    client = ServiceClient(port=service.port)
    seeds = [0, 1, 2, 3]
    with concurrent.futures.ThreadPoolExecutor(4) as pool:
        responses = list(
            pool.map(lambda s: client.submit(sweep_body(seed=s)), seeds)
        )
    ids = [r["job_id"] for r in responses]
    assert len(set(ids)) == len(seeds), "distinct configs, distinct jobs"

    for seed, job_id in zip(seeds, ids):
        client.wait(job_id, timeout_s=300)
        assert client.result(job_id)["digest"] == direct_digest(seed), (
            f"seed {seed}: served digest diverged from the direct runner"
        )
    executions = service.service.manager.executions
    assert sorted(executions) == sorted(ids)


def test_mixed_storm_dedupes_per_config(service):
    """An interleaved storm of 2 distinct configs x 4 clients each."""
    client = ServiceClient(port=service.port)
    jobs = [sweep_body(seed=s) for s in (5, 6)] * 4
    with concurrent.futures.ThreadPoolExecutor(8) as pool:
        responses = list(pool.map(client.submit, jobs))
    ids = {r["job_id"] for r in responses}
    assert len(ids) == 2
    for job_id in ids:
        client.wait(job_id, timeout_s=300)
    assert sorted(service.service.manager.executions) == sorted(ids)
