"""Unit tests for the set-associative array, cache, and TLB models."""

import pytest

from repro.mem.cache import Cache, SetAssocArray
from repro.mem.partition import WayPartition, full_mask, harvest_mask
from repro.mem.replacement import LruPolicy
from repro.mem.tlb import Tlb


def make_array(sets=4, ways=2):
    return SetAssocArray("test", sets, ways, LruPolicy())


class TestSetAssocArray:
    def test_miss_then_hit(self):
        arr = make_array()
        allowed = full_mask(2)
        assert arr.access(0, 42, False, allowed) is False
        assert arr.access(0, 42, False, allowed) is True
        assert arr.hits == 1
        assert arr.misses == 1
        assert arr.hit_rate() == 0.5

    def test_capacity_eviction(self):
        arr = make_array(sets=1, ways=2)
        allowed = full_mask(2)
        arr.access(0, 1, False, allowed)
        arr.access(0, 2, False, allowed)
        arr.access(0, 3, False, allowed)  # evicts tag 1 (LRU)
        assert arr.evictions == 1
        assert arr.access(0, 2, False, allowed) is True
        assert arr.access(0, 1, False, allowed) is False

    def test_flush_all_empties(self):
        arr = make_array()
        allowed = full_mask(2)
        arr.access(0, 1, False, allowed)
        arr.access(1, 2, False, allowed)
        assert arr.occupancy() == 2
        arr.flush_all()
        assert arr.occupancy() == 0
        assert arr.access(0, 1, False, allowed) is False

    def test_flush_ways_partial(self):
        arr = make_array(sets=1, ways=2)
        allowed = full_mask(2)
        arr.access(0, 1, False, allowed)  # lands in some way
        arr.access(0, 2, False, allowed)
        arr.flush_ways(0b01)  # invalidate way 0 only
        assert arr.occupancy() == 1

    def test_lazy_flush_equivalent_to_eager(self):
        """Entries in flushed ways must miss on the next access even though
        invalidation is lazy."""
        arr = make_array(sets=2, ways=2)
        allowed = full_mask(2)
        arr.access(0, 7, False, allowed)
        arr.access(1, 9, False, allowed)
        arr.flush_all()
        # No settle() call: the access path itself must observe the flush.
        assert arr.access(0, 7, False, allowed) is False
        assert arr.access(1, 9, False, allowed) is False

    def test_flush_then_refill_then_flush_older_epoch(self):
        arr = make_array(sets=1, ways=2)
        allowed = full_mask(2)
        arr.access(0, 1, False, allowed)
        arr.flush_all()
        arr.access(0, 2, False, allowed)  # refill after flush
        assert arr.access(0, 2, False, allowed) is True

    def test_probe_does_not_mutate(self):
        arr = make_array()
        allowed = full_mask(2)
        assert arr.probe(0, 5, allowed) is False
        arr.access(0, 5, False, allowed)
        hits, misses = arr.hits, arr.misses
        assert arr.probe(0, 5, allowed) is True
        assert (arr.hits, arr.misses) == (hits, misses)

    def test_trace_recording_with_limit(self):
        arr = make_array()
        arr.enable_trace(limit=2)
        allowed = full_mask(2)
        for tag in range(5):
            arr.access(0, tag, False, allowed)
        assert len(arr.trace) == 2
        assert arr.trace[0] == (0, 0, False)

    def test_out_of_range_set_rejected(self):
        arr = make_array(sets=2)
        with pytest.raises(IndexError):
            arr.access(5, 1, False, full_mask(2))


class TestCache:
    def test_geometry(self):
        cache = Cache("L1", 1024, 2, 64, 5, LruPolicy())
        assert cache.array.num_sets == 8
        set_index, tag = cache.locate(0)
        assert (set_index, tag) == (0, 0)
        # Address one line up maps to the next set.
        assert cache.locate(64)[0] == 1
        # Address num_sets lines up wraps to set 0 with tag 1.
        assert cache.locate(64 * 8) == (0, 1)

    def test_same_set_different_tags_conflict(self):
        cache = Cache("L1", 1024, 2, 64, 5, LruPolicy())
        allowed = full_mask(2)
        stride = 64 * 8  # same set
        cache.access(0, False, allowed)
        cache.access(stride, False, allowed)
        cache.access(2 * stride, False, allowed)
        assert cache.access(0, False, allowed) is False  # evicted

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, 3, 64, 5, LruPolicy())


class TestTlb:
    def test_page_granularity(self):
        tlb = Tlb("L1TLB", 8, 2, 2, LruPolicy())
        allowed = full_mask(2)
        assert tlb.access(0, True, allowed) is False
        # Same page, different offset: hit.
        assert tlb.access(100, True, allowed) is True
        # Different page: miss.
        assert tlb.access(4096, True, allowed) is False

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            Tlb("bad", 7, 2, 2, LruPolicy())


class TestPartitionMasks:
    def test_full_mask(self):
        assert full_mask(4) == 0b1111
        with pytest.raises(ValueError):
            full_mask(0)

    def test_harvest_mask_half(self):
        assert harvest_mask(8, 0.5) == 0b1111

    def test_harvest_mask_bounds(self):
        # Never all ways, never zero ways.
        assert harvest_mask(2, 0.9) == 0b01
        assert harvest_mask(2, 0.1) == 0b01
        with pytest.raises(ValueError):
            harvest_mask(4, 0.0)

    def test_way_partition_complement(self):
        part = WayPartition.split(8, 0.5)
        assert part.harvest | part.non_harvest == full_mask(8)
        assert part.harvest & part.non_harvest == 0
        assert part.harvest_way_count == 4

    def test_unpartitioned(self):
        part = WayPartition.unpartitioned(8)
        assert part.harvest == 0
        assert part.non_harvest == full_mask(8)
