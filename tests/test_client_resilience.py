"""Tests for the client resilience layer: deadlines, retries, retry
budgets, hedging, and admission control."""

from dataclasses import replace

from repro.config import SimulationConfig
from repro.core.experiment import run_server_raw
from repro.core.presets import noharvest
from repro.faults import ClientPolicy, FaultKind, FaultSchedule, FaultSpec

FAST = SimulationConfig(horizon_ms=60, warmup_ms=10, accesses_per_segment=8, seed=17)

#: Total packet loss for a 10 ms window: every attempt arriving inside it
#: is dropped, so the client discovers the loss only via its deadline.
BLACKOUT = FaultSchedule(
    events=(
        FaultSpec(kind=FaultKind.PACKET_LOSS, start_ms=20.0, duration_ms=10.0,
                  magnitude=1.0),
    )
)


def _run(policy, faults=BLACKOUT, system=None, **cfg_kwargs):
    cfg = replace(FAST, faults=faults, client=policy, **cfg_kwargs)
    return run_server_raw(system or noharvest(), cfg)


def test_timeouts_drive_retries():
    sim = _run(ClientPolicy(timeout_ms=5.0, max_retries=4, retry_budget=2.0))
    client = sim.client
    assert client.timeouts > 0
    assert client.retries_issued > 0
    # Retries rescued most of the blacked-out requests.
    assert client.completed > 0
    assert client.completed + client.failed_permanently == client.arrived


def test_max_retries_bounds_attempts_per_logical():
    sim = _run(ClientPolicy(timeout_ms=5.0, max_retries=1, retry_budget=10.0))
    for lg in sim.client.logicals.values():
        assert lg.retries_used <= 1
        assert lg.attempts_issued <= 2  # original + 1 retry (no hedging)


def test_zero_retry_budget_fails_fast():
    sim = _run(ClientPolicy(timeout_ms=5.0, max_retries=4, retry_budget=0.0))
    client = sim.client
    assert client.retries_issued == 0
    assert client.failed_permanently > 0
    assert client.completed + client.failed_permanently == client.arrived


def test_retry_budget_caps_global_retry_volume():
    sim = _run(ClientPolicy(timeout_ms=5.0, max_retries=8, retry_budget=0.05))
    client = sim.client
    # Total retries never exceed the budget fraction of offered load
    # (+1 for the integer floor applied before each retry decision).
    assert client.retries_issued <= int(0.05 * client.arrived) + 1


def test_admission_control_sheds_under_overload():
    sim = _run(
        ClientPolicy(timeout_ms=25.0, max_retries=2, retry_budget=1.0,
                     admission_queue_depth=1),
        faults=FaultSchedule(),
        load_scale=3.0,
    )
    client = sim.client
    assert client.shed > 0
    assert sim.counters["admission_shed"] == client.shed
    assert client.completed + client.failed_permanently == client.arrived


def test_hedging_issues_second_attempt_and_dedupes():
    sim = _run(
        ClientPolicy(timeout_ms=50.0, max_retries=2, retry_budget=1.0,
                     hedge_ms=0.5),
        faults=FaultSchedule(),
    )
    client = sim.client
    assert client.hedges > 0
    # First completion wins; the losing sibling never double-counts.
    assert client.completed <= client.arrived
    assert client.completed + client.failed_permanently == client.arrived
    for lg in client.logicals.values():
        assert not lg.inflight  # every attempt resolved or cancelled


def test_slo_can_be_tighter_than_timeout():
    loose = _run(ClientPolicy(timeout_ms=25.0, max_retries=2, retry_budget=1.0),
                 faults=FaultSchedule())
    tight = _run(ClientPolicy(timeout_ms=25.0, slo_ms=0.5, max_retries=2,
                              retry_budget=1.0),
                 faults=FaultSchedule())
    assert tight.client.completed == loose.client.completed
    assert tight.client.completed_in_slo < loose.client.completed_in_slo
    assert tight.resilience_summary()["goodput"] < \
        loose.resilience_summary()["goodput"]


def test_resilience_summary_is_deterministic():
    policy = ClientPolicy(timeout_ms=5.0, max_retries=3, retry_budget=1.0)
    a = _run(policy).resilience_summary()
    b = _run(policy).resilience_summary()
    assert a == b
    assert a["retries"] > 0  # jittered backoff drew from the RNG stream


def test_recovery_time_measured_after_fault_window():
    sim = _run(ClientPolicy(timeout_ms=8.0, max_retries=4, retry_budget=2.0))
    res = sim.resilience_summary()
    # Requests in flight during the blackout resolved after it ended, so
    # the fault has a nonzero time-to-recovery.
    assert res["recovery_ms_max"] > 0.0
    assert res["recovery_ms_mean"] <= res["recovery_ms_max"]
