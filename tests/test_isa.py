"""Tests for the user-level instruction surface and library shims."""

import pytest

from repro.config import ControllerConfig
from repro.hw.controller import HardHarvestController
from repro.hw.isa import CoreIsa, GrpcCompletionQueue, ThriftServerSocket


@pytest.fixture()
def setup():
    ctrl = HardHarvestController(ControllerConfig(), num_cores=36)
    ctrl.register_vm(0, True, 4)
    ctrl.register_vm(8, False, 4)
    isa = CoreIsa(ctrl, core_id=0, my_manager=0)
    return ctrl, isa


class TestInstructions:
    def test_spin_dequeue_complete_cycle(self, setup):
        ctrl, isa = setup
        assert isa.spin() is False
        ctrl.deliver(0, "req-1")
        assert isa.spin() is True
        req = isa.dequeue()
        assert req == "req-1"
        isa.complete(req)
        assert isa.spin() is False
        assert isa.stats.spins == 3
        assert isa.stats.dequeues == 1
        assert isa.stats.completes == 1
        assert isa.stats.control_ns > 0

    def test_block_keeps_entry(self, setup):
        ctrl, isa = setup
        ctrl.deliver(0, "req-1")
        req = isa.dequeue()
        isa.block(req)
        assert ctrl.qm_for(0).pending() == 1
        assert isa.spin() is False  # blocked, not ready

    def test_enqueue_local_request(self, setup):
        ctrl, isa = setup
        assert isa.enqueue("nested") is True
        assert isa.dequeue() == "nested"

    def test_my_manager_rebind(self, setup):
        ctrl, isa = setup
        assert 0 in ctrl.qm_for(0).bound_cores
        isa.set_my_manager(8)
        assert 0 not in ctrl.qm_for(0).bound_cores
        assert 0 in ctrl.qm_for(8).bound_cores
        ctrl.deliver(8, "batch-work")
        assert isa.dequeue() == "batch-work"

    def test_isolation_between_vms(self, setup):
        """A core bound to VM 0 can never dequeue VM 8's requests —
        Section 4.1.7's first missing support in prior hardware queues."""
        ctrl, isa = setup
        ctrl.deliver(8, "other-vms-request")
        assert isa.spin() is False
        assert isa.dequeue() is None


class TestLibraryShims:
    def test_grpc_completion_queue(self, setup):
        ctrl, isa = setup
        cq = GrpcCompletionQueue(isa)
        assert cq.next(max_spins=3) is None
        ctrl.deliver(0, "rpc-7")
        assert cq.next() == "rpc-7"

    def test_thrift_server_socket(self, setup):
        ctrl, isa = setup
        sock = ThriftServerSocket(isa)
        with pytest.raises(RuntimeError):
            sock.accept()
        sock.listen()
        assert sock.accept() is None
        ctrl.deliver(0, "thrift-call")
        assert sock.accept() == "thrift-call"
