"""Golden-shape regression test.

Pins the qualitative landscape of the reproduction at a small, fast scale
so refactors that silently change the physics get caught. Tolerances are
wide (these are shapes, not values); the full-scale equivalents live in
the benchmark suite.
"""

import pytest

from repro.config import SimulationConfig
from repro.core.experiment import run_systems
from repro.core.presets import all_systems

CFG = SimulationConfig(horizon_ms=200, warmup_ms=40, accesses_per_segment=12, seed=2025)


@pytest.fixture(scope="module")
def results():
    return run_systems(all_systems(), CFG)


def test_shape_software_tail_degradation(results):
    base = results["NoHarvest"].avg_p99_ms()
    assert 1.1 < results["Harvest-Term"].avg_p99_ms() / base < 8.0
    assert 1.1 < results["Harvest-Block"].avg_p99_ms() / base < 8.0


def test_shape_hardharvest_tail_advantage(results):
    base = results["NoHarvest"].avg_p99_ms()
    assert results["HardHarvest-Block"].avg_p99_ms() / base < 1.0
    assert results["HardHarvest-Term"].avg_p99_ms() / base < 1.0


def test_shape_median_contrast(results):
    base = results["NoHarvest"].avg_p50_ms()
    assert results["Harvest-Block"].avg_p50_ms() / base < 1.4
    assert results["HardHarvest-Block"].avg_p50_ms() / base < 0.95


def test_shape_utilization_ladder(results):
    busy = {k: r.avg_busy_cores for k, r in results.items()}
    assert busy["NoHarvest"] < 12
    assert 1.3 * busy["NoHarvest"] < busy["Harvest-Term"] < busy["HardHarvest-Block"]
    assert busy["HardHarvest-Block"] > 30


def test_shape_throughput_ladder(results):
    thr = {k: r.batch_units_per_s for k, r in results.items()}
    # At this fast scale the software agent barely gets going (few monitor
    # ticks) — its gain is small but positive; hardware gains are large.
    assert 1.05 < thr["Harvest-Term"] / thr["NoHarvest"] < 3.5
    assert 2.0 < thr["HardHarvest-Block"] / thr["NoHarvest"] < 6.5
    assert thr["HardHarvest-Block"] > 2.0 * thr["Harvest-Term"]


def test_shape_reassignment_volumes(results):
    """Hardware reassigns orders of magnitude more often than software —
    the enabling property of the whole design."""
    sw = results["Harvest-Block"].counters.get("lends", 0)
    hw = results["HardHarvest-Block"].counters.get("lends", 0)
    assert sw > 5
    assert hw > 10 * sw
