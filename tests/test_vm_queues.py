"""Tests for VM-level queues: software per-core steering vs shared adapter."""

import pytest

from repro.cluster.vm import BatchUnit, HarvestVm, SharedQueueAdapter, SoftwareQueue
from repro.config import ControllerConfig
from repro.hw.controller import HardHarvestController
from repro.mem.address import AddressSpace
from repro.workloads.batch import BATCH_JOBS
from repro.workloads.memory_profile import BatchMemory


class FakeRequest:
    def __init__(self, name, steered=None):
        self.name = name
        self.steered_core_id = steered

    def __repr__(self):
        return f"<{self.name}>"


class TestSoftwareQueueSteering:
    def test_steered_dequeue_matches_core(self):
        q = SoftwareQueue(0)
        a = FakeRequest("a", steered=1)
        b = FakeRequest("b", steered=2)
        q.enqueue(a)
        q.enqueue(b)
        assert q.has_ready(1) and q.has_ready(2)
        assert not q.has_ready(3)
        assert q.dequeue(2) is b
        assert q.dequeue(2) is None
        assert q.dequeue(1) is a

    def test_unsteered_matches_any_core(self):
        q = SoftwareQueue(0)
        a = FakeRequest("a", steered=None)
        q.enqueue(a)
        assert q.has_ready(7)
        assert q.dequeue(7) is a

    def test_dequeue_any_fifo(self):
        q = SoftwareQueue(0)
        a, b = FakeRequest("a", 1), FakeRequest("b", 2)
        q.enqueue(a)
        q.enqueue(b)
        assert q.dequeue(None) is a

    def test_exclude_steered_to_loaned_cores(self):
        q = SoftwareQueue(0)
        a, b = FakeRequest("a", 1), FakeRequest("b", 2)
        q.enqueue(a)
        q.enqueue(b)
        assert q.dequeue(None, exclude_steered_to={1}) is b
        assert not q.has_ready(None, exclude_steered_to={1})

    def test_ready_steered_cores_order_and_dedup(self):
        q = SoftwareQueue(0)
        for name, core in (("a", 3), ("b", 1), ("c", 3)):
            q.enqueue(FakeRequest(name, core))
        assert q.ready_steered_cores() == [3, 1]

    def test_blocked_requests_not_ready(self):
        q = SoftwareQueue(0)
        a = FakeRequest("a", 1)
        q.enqueue(a)
        got = q.dequeue(1)
        q.mark_blocked(got)
        assert not q.has_ready(1)
        assert q.ready_count() == 0
        q.mark_ready(got)
        assert q.ready_count() == 1
        q.dequeue(1)
        q.complete(got)
        assert q.pending() == 0


class TestSharedQueueAdapter:
    def make(self):
        ctrl = HardHarvestController(ControllerConfig(), 36)
        qm = ctrl.register_vm(0, True, 4)
        return SharedQueueAdapter(qm)

    def test_any_core_dequeues(self):
        q = self.make()
        a = FakeRequest("a", steered=5)
        q.enqueue(a)
        # Shared subqueue: steering is irrelevant.
        assert q.has_ready(99)
        assert q.dequeue(99) is a

    def test_ready_count(self):
        q = self.make()
        q.enqueue(FakeRequest("a"))
        q.enqueue(FakeRequest("b"))
        got = q.dequeue()
        assert q.ready_count() == 1
        q.mark_blocked(got)
        assert q.ready_count() == 1
        assert q.pending() == 2


class TestHarvestVm:
    def make(self):
        job = BATCH_JOBS[0]
        mem = BatchMemory(AddressSpace(8), job.code_pages, job.data_pages, job.skew)
        return HarvestVm(8, job, mem, llc=None)

    def test_infinite_backlog(self):
        vm = self.make()
        for _ in range(5):
            unit = vm.next_unit()
            assert unit.remaining_frac == 1.0

    def test_preserved_partial_resumes_first(self):
        vm = self.make()
        vm.return_partial(0.4, preserved=True, lost_ns=0)
        unit = vm.next_unit()
        assert unit.remaining_frac == pytest.approx(0.4)
        assert vm.preemptions == 1
        assert vm.work_lost_ns == 0

    def test_unpreserved_work_is_lost(self):
        vm = self.make()
        vm.return_partial(0.7, preserved=False, lost_ns=1234)
        assert vm.work_lost_ns == 1234
        assert vm.next_unit().remaining_frac == 1.0

    def test_zero_remaining_not_requeued(self):
        vm = self.make()
        vm.return_partial(0.0, preserved=True, lost_ns=0)
        assert not vm.partial_units

    def test_batch_unit_validation(self):
        with pytest.raises(ValueError):
            BatchUnit(0.0)
        with pytest.raises(ValueError):
            BatchUnit(1.5)
