"""Cancellation edge cases in the event engine.

The fault subsystem leans on two guarantees that plain happy-path tests
don't exercise: cancelling an event from *within* another event that
fires at the same timestamp (deadline timers racing completions), and
the lifecycle of a handle after cancellation (stale-handle bookkeeping
via :attr:`EventHandle.active`).
"""

import pytest

from repro.sim.engine import Simulator


def test_cancel_sibling_at_same_timestamp():
    """An event firing at t can cancel a sibling also scheduled at t.

    Both events are already in the heap's front region when the first
    fires; lazy cancellation must still suppress the second.
    """
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        second.cancel()

    sim.schedule(10, first)
    second = sim.schedule(10, lambda: fired.append("second"))
    third = sim.schedule(10, lambda: fired.append("third"))
    sim.run()
    assert fired == ["first", "third"]
    assert second.cancelled and not second.fired and not second.active
    assert third.fired and not third.active


def test_self_cancel_during_fire_is_noop():
    """cancel() on a handle that is mid-fire is a no-op, not an error."""
    sim = Simulator()
    fired = []
    handles = []

    def self_cancel():
        handles[0].cancel()
        fired.append("ran")

    handles.append(sim.schedule(5, self_cancel))
    sim.run()
    assert fired == ["ran"]
    assert handles[0].fired
    assert not handles[0].active  # no longer pending either way


def test_rescheduling_a_cancelled_handles_callback():
    """A cancelled handle's callback can be re-scheduled as a new event;
    the old handle stays dead and the new one fires independently."""
    sim = Simulator()
    fired = []

    def deadline(tag):
        fired.append(tag)

    old = sim.schedule(10, deadline, "old")
    old.cancel()
    new = sim.schedule(20, deadline, "new")  # re-arm: fresh handle
    assert not old.active and new.active
    sim.run()
    assert fired == ["new"]
    assert new.fired and not old.fired
    # Cancelling the spent old handle again is still safe.
    old.cancel()
    new.cancel()
    assert fired == ["new"]


def test_cancel_and_rearm_at_same_timestamp_from_within_event():
    """The retry path of a deadline timer: an event at t cancels a timer
    also pending at t and re-arms its callback at the same timestamp."""
    sim = Simulator()
    fired = []
    box = {}

    def rearm():
        box["timer"].cancel()
        box["timer"] = sim.schedule_at(sim.now, fired.append, "rearmed")

    sim.schedule(10, rearm)
    box["timer"] = sim.schedule(10, fired.append, "original")
    sim.run()
    assert fired == ["rearmed"]
    assert box["timer"].fired


def test_active_reflects_lifecycle():
    sim = Simulator()
    h = sim.schedule(5, lambda: None)
    assert h.active  # pending
    h.cancel()
    assert not h.active and not h.fired  # cancelled, never ran
    h2 = sim.schedule(5, lambda: None)
    sim.run()
    assert h2.fired and not h2.active  # fired


def test_cancelled_events_do_not_count_as_fired():
    sim = Simulator()
    handles = [sim.schedule(i, lambda: None) for i in range(6)]
    for h in handles[::2]:
        h.cancel()
    fired = sim.run()
    assert fired == 3
    assert sim.events_fired == 3


def test_peek_next_time_after_in_event_cancellation():
    """peek_next_time stays correct when the next pending event was
    cancelled by the one that just fired."""
    sim = Simulator()
    later = sim.schedule(20, lambda: None)
    sim.schedule(10, later.cancel)
    sim.run(max_events=1)
    assert sim.peek_next_time() is None


def test_pending_live_events_tracks_cancellations():
    sim = Simulator()
    a = sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    assert sim.pending_live_events == 2
    a.cancel()
    a.cancel()  # idempotent: must not double-count
    assert sim.pending_live_events == 1
    assert sim.pending_events == 2  # raw heap still holds the dead entry
    sim.run()
    assert sim.pending_live_events == 0


def test_heavy_cancellation_compacts_heap():
    """Mass-cancelling deadline timers (a fault storm) triggers in-place
    heap compaction once dead entries are the majority, instead of
    dragging them through every subsequent push/pop."""
    sim = Simulator()
    handles = [sim.schedule(1000 + i, lambda: None) for i in range(1500)]
    for h in handles[:1200]:
        h.cancel()
    assert sim.pending_live_events == 300
    # Compaction swept the dead majority out of the raw heap.
    assert sim.pending_events < 1500
    assert sim.run() == 300


def test_compaction_preserves_firing_order():
    """Survivors fire in exactly the order they would have without any
    compaction: (time, seq) keys are untouched by the sweep."""
    sim = Simulator()
    fired = []
    handles = [
        sim.schedule(10 * (i % 7), fired.append, i) for i in range(1400)
    ]
    expected = [
        i for i, h in enumerate(handles) if i % 2
    ]
    for i, h in enumerate(handles):
        if i % 2 == 0:
            h.cancel()
    sim.run()
    # Stable by (time, insertion seq): same time bucket keeps index order.
    assert fired == sorted(expected, key=lambda i: (10 * (i % 7), i))


def test_cancellation_during_run_keeps_live_count_consistent():
    """Events cancelled from within events (and dead entries popped by the
    run loop) keep the O(1) live-count bookkeeping exact."""
    sim = Simulator()
    handles = []

    def cancel_some(k):
        for h in handles[k:k + 40]:
            h.cancel()

    for i in range(600):
        handles.append(sim.schedule(5 + i, lambda: None))
    for j in range(5):
        sim.schedule(j, cancel_some, j * 40)
    sim.run()
    assert sim.pending_live_events == 0
    assert sim.pending_events == 0


def test_rearm_must_target_now_or_later():
    """Re-arming a timer must target now or later — the engine refuses a
    stale absolute timestamp even for a fresh handle."""
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    assert sim.now == 10
    with pytest.raises(ValueError):
        sim.schedule_at(9, lambda: None)
    h = sim.schedule_at(10, lambda: None)  # now itself is fine
    assert h.active
