"""Cancellation edge cases in the event engine.

The fault subsystem leans on two guarantees that plain happy-path tests
don't exercise: cancelling an event from *within* another event that
fires at the same timestamp (deadline timers racing completions), and
the lifecycle of a handle after cancellation (stale-handle bookkeeping
via :attr:`EventHandle.active`).
"""

import pytest

from repro.sim.engine import Simulator


def test_cancel_sibling_at_same_timestamp():
    """An event firing at t can cancel a sibling also scheduled at t.

    Both events are already in the heap's front region when the first
    fires; lazy cancellation must still suppress the second.
    """
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        second.cancel()

    sim.schedule(10, first)
    second = sim.schedule(10, lambda: fired.append("second"))
    third = sim.schedule(10, lambda: fired.append("third"))
    sim.run()
    assert fired == ["first", "third"]
    assert second.cancelled and not second.fired and not second.active
    assert third.fired and not third.active


def test_self_cancel_during_fire_is_noop():
    """cancel() on a handle that is mid-fire is a no-op, not an error."""
    sim = Simulator()
    fired = []
    handles = []

    def self_cancel():
        handles[0].cancel()
        fired.append("ran")

    handles.append(sim.schedule(5, self_cancel))
    sim.run()
    assert fired == ["ran"]
    assert handles[0].fired
    assert not handles[0].active  # no longer pending either way


def test_rescheduling_a_cancelled_handles_callback():
    """A cancelled handle's callback can be re-scheduled as a new event;
    the old handle stays dead and the new one fires independently."""
    sim = Simulator()
    fired = []

    def deadline(tag):
        fired.append(tag)

    old = sim.schedule(10, deadline, "old")
    old.cancel()
    new = sim.schedule(20, deadline, "new")  # re-arm: fresh handle
    assert not old.active and new.active
    sim.run()
    assert fired == ["new"]
    assert new.fired and not old.fired
    # Cancelling the spent old handle again is still safe.
    old.cancel()
    new.cancel()
    assert fired == ["new"]


def test_cancel_and_rearm_at_same_timestamp_from_within_event():
    """The retry path of a deadline timer: an event at t cancels a timer
    also pending at t and re-arms its callback at the same timestamp."""
    sim = Simulator()
    fired = []
    box = {}

    def rearm():
        box["timer"].cancel()
        box["timer"] = sim.schedule_at(sim.now, fired.append, "rearmed")

    sim.schedule(10, rearm)
    box["timer"] = sim.schedule(10, fired.append, "original")
    sim.run()
    assert fired == ["rearmed"]
    assert box["timer"].fired


def test_active_reflects_lifecycle():
    sim = Simulator()
    h = sim.schedule(5, lambda: None)
    assert h.active  # pending
    h.cancel()
    assert not h.active and not h.fired  # cancelled, never ran
    h2 = sim.schedule(5, lambda: None)
    sim.run()
    assert h2.fired and not h2.active  # fired


def test_cancelled_events_do_not_count_as_fired():
    sim = Simulator()
    handles = [sim.schedule(i, lambda: None) for i in range(6)]
    for h in handles[::2]:
        h.cancel()
    fired = sim.run()
    assert fired == 3
    assert sim.events_fired == 3


def test_peek_next_time_after_in_event_cancellation():
    """peek_next_time stays correct when the next pending event was
    cancelled by the one that just fired."""
    sim = Simulator()
    later = sim.schedule(20, lambda: None)
    sim.schedule(10, later.cancel)
    sim.run(max_events=1)
    assert sim.peek_next_time() is None


def test_rearm_must_target_now_or_later():
    """Re-arming a timer must target now or later — the engine refuses a
    stale absolute timestamp even for a fresh handle."""
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    assert sim.now == 10
    with pytest.raises(ValueError):
        sim.schedule_at(9, lambda: None)
    h = sim.schedule_at(10, lambda: None)  # now itself is fine
    assert h.active
