"""Cancellation and batched-drain edge cases in the event engine.

The fault subsystem leans on two guarantees that plain happy-path tests
don't exercise: cancelling an event from *within* another event that
fires at the same timestamp (deadline timers racing completions), and
the lifecycle of a handle after cancellation (stale-handle bookkeeping
via :attr:`EventHandle.active`).

The second half targets the batched same-timestamp drain
(:meth:`Simulator._run_batched`): zero-delay events joining the current
batch, stop()/max_events honored mid-batch, heap compaction triggered
*inside* a drain, and probes firing between batches — each checked
against the reference loop (``REPRO_SCHED_SLOWPATH=1``) where the
orderings are subtle.
"""

import pytest

from repro.sim.engine import SCHED_SLOWPATH_ENV, Simulator


def test_cancel_sibling_at_same_timestamp():
    """An event firing at t can cancel a sibling also scheduled at t.

    Both events are already in the heap's front region when the first
    fires; lazy cancellation must still suppress the second.
    """
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        second.cancel()

    sim.schedule(10, first)
    second = sim.schedule(10, lambda: fired.append("second"))
    third = sim.schedule(10, lambda: fired.append("third"))
    sim.run()
    assert fired == ["first", "third"]
    assert second.cancelled and not second.fired and not second.active
    assert third.fired and not third.active


def test_self_cancel_during_fire_is_noop():
    """cancel() on a handle that is mid-fire is a no-op, not an error."""
    sim = Simulator()
    fired = []
    handles = []

    def self_cancel():
        handles[0].cancel()
        fired.append("ran")

    handles.append(sim.schedule(5, self_cancel))
    sim.run()
    assert fired == ["ran"]
    assert handles[0].fired
    assert not handles[0].active  # no longer pending either way


def test_rescheduling_a_cancelled_handles_callback():
    """A cancelled handle's callback can be re-scheduled as a new event;
    the old handle stays dead and the new one fires independently."""
    sim = Simulator()
    fired = []

    def deadline(tag):
        fired.append(tag)

    old = sim.schedule(10, deadline, "old")
    old.cancel()
    new = sim.schedule(20, deadline, "new")  # re-arm: fresh handle
    assert not old.active and new.active
    sim.run()
    assert fired == ["new"]
    assert new.fired and not old.fired
    # Cancelling the spent old handle again is still safe.
    old.cancel()
    new.cancel()
    assert fired == ["new"]


def test_cancel_and_rearm_at_same_timestamp_from_within_event():
    """The retry path of a deadline timer: an event at t cancels a timer
    also pending at t and re-arms its callback at the same timestamp."""
    sim = Simulator()
    fired = []
    box = {}

    def rearm():
        box["timer"].cancel()
        box["timer"] = sim.schedule_at(sim.now, fired.append, "rearmed")

    sim.schedule(10, rearm)
    box["timer"] = sim.schedule(10, fired.append, "original")
    sim.run()
    assert fired == ["rearmed"]
    assert box["timer"].fired


def test_active_reflects_lifecycle():
    sim = Simulator()
    h = sim.schedule(5, lambda: None)
    assert h.active  # pending
    h.cancel()
    assert not h.active and not h.fired  # cancelled, never ran
    h2 = sim.schedule(5, lambda: None)
    sim.run()
    assert h2.fired and not h2.active  # fired


def test_cancelled_events_do_not_count_as_fired():
    sim = Simulator()
    handles = [sim.schedule(i, lambda: None) for i in range(6)]
    for h in handles[::2]:
        h.cancel()
    fired = sim.run()
    assert fired == 3
    assert sim.events_fired == 3


def test_peek_next_time_after_in_event_cancellation():
    """peek_next_time stays correct when the next pending event was
    cancelled by the one that just fired."""
    sim = Simulator()
    later = sim.schedule(20, lambda: None)
    sim.schedule(10, later.cancel)
    sim.run(max_events=1)
    assert sim.peek_next_time() is None


def test_pending_live_events_tracks_cancellations():
    sim = Simulator()
    a = sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    assert sim.pending_live_events == 2
    a.cancel()
    a.cancel()  # idempotent: must not double-count
    assert sim.pending_live_events == 1
    assert sim.pending_events == 2  # raw heap still holds the dead entry
    sim.run()
    assert sim.pending_live_events == 0


def test_heavy_cancellation_compacts_heap():
    """Mass-cancelling deadline timers (a fault storm) triggers in-place
    heap compaction once dead entries are the majority, instead of
    dragging them through every subsequent push/pop."""
    sim = Simulator()
    handles = [sim.schedule(1000 + i, lambda: None) for i in range(1500)]
    for h in handles[:1200]:
        h.cancel()
    assert sim.pending_live_events == 300
    # Compaction swept the dead majority out of the raw heap.
    assert sim.pending_events < 1500
    assert sim.run() == 300


def test_compaction_preserves_firing_order():
    """Survivors fire in exactly the order they would have without any
    compaction: (time, seq) keys are untouched by the sweep."""
    sim = Simulator()
    fired = []
    handles = [
        sim.schedule(10 * (i % 7), fired.append, i) for i in range(1400)
    ]
    expected = [
        i for i, h in enumerate(handles) if i % 2
    ]
    for i, h in enumerate(handles):
        if i % 2 == 0:
            h.cancel()
    sim.run()
    # Stable by (time, insertion seq): same time bucket keeps index order.
    assert fired == sorted(expected, key=lambda i: (10 * (i % 7), i))


def test_cancellation_during_run_keeps_live_count_consistent():
    """Events cancelled from within events (and dead entries popped by the
    run loop) keep the O(1) live-count bookkeeping exact."""
    sim = Simulator()
    handles = []

    def cancel_some(k):
        for h in handles[k:k + 40]:
            h.cancel()

    for i in range(600):
        handles.append(sim.schedule(5 + i, lambda: None))
    for j in range(5):
        sim.schedule(j, cancel_some, j * 40)
    sim.run()
    assert sim.pending_live_events == 0
    assert sim.pending_events == 0


def test_rearm_must_target_now_or_later():
    """Re-arming a timer must target now or later — the engine refuses a
    stale absolute timestamp even for a fresh handle."""
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    assert sim.now == 10
    with pytest.raises(ValueError):
        sim.schedule_at(9, lambda: None)
    h = sim.schedule_at(10, lambda: None)  # now itself is fine
    assert h.active


# ----------------------------------------------------------------------
# Batched same-timestamp drain
# ----------------------------------------------------------------------

def _both_paths(monkeypatch, scenario):
    """Run ``scenario(sim) -> trace`` under the batched and the reference
    loop; return both traces. The simulator is constructed *after* the
    environment flip because the path choice is made at construction."""
    monkeypatch.delenv(SCHED_SLOWPATH_ENV, raising=False)
    fast = scenario(Simulator())
    monkeypatch.setenv(SCHED_SLOWPATH_ENV, "1")
    slow = scenario(Simulator())
    return fast, slow


def test_mixed_schedule_cancel_rearm_matches_reference(monkeypatch):
    """A same-timestamp soup of schedule/cancel/re-arm fires identically
    under the batched drain and the reference loop.

    The first event at t=10 cancels one sibling, re-arms another at the
    same timestamp (delay=0 -> joins the current batch), and schedules a
    future event; the trace (tag, now) pairs must match exactly.
    """

    def scenario(sim):
        trace = []

        def note(tag):
            trace.append((tag, sim.now))

        def first():
            note("first")
            victim.cancel()
            sim.schedule(0, note, "rearmed")  # joins the t=10 batch
            sim.schedule(5, note, "future")

        sim.schedule(10, first)
        victim = sim.schedule(10, note, "victim")
        sim.schedule(10, note, "survivor")
        sim.run()
        return trace

    fast, slow = _both_paths(monkeypatch, scenario)
    assert fast == slow
    assert fast == [
        ("first", 10), ("survivor", 10), ("rearmed", 10), ("future", 15),
    ]


def test_zero_delay_chain_drains_in_one_batch():
    """delay=0 events scheduled from within a batch keep extending it, in
    seq order, without the clock moving."""
    sim = Simulator()
    trace = []

    def chain(depth):
        trace.append((depth, sim.now))
        if depth < 4:
            sim.schedule(0, chain, depth + 1)

    sim.schedule(7, chain, 0)
    sim.schedule(7, trace.append, "sibling")
    sim.run()
    # The sibling (seq 2) fires before the chain's continuations (seq 3+).
    assert trace == [(0, 7), "sibling", (1, 7), (2, 7), (3, 7), (4, 7)]
    assert sim.now == 7


def test_stop_mid_batch_suppresses_same_timestamp_tail(monkeypatch):
    """stop() from inside a batch halts before the next same-timestamp
    event — identical to the reference loop's behavior."""

    def scenario(sim):
        trace = []
        sim.schedule(10, trace.append, "a")
        sim.schedule(10, lambda: (trace.append("stop"), sim.stop()))
        sim.schedule(10, trace.append, "never")
        fired = sim.run()
        return trace, fired, sim.pending_live_events

    fast, slow = _both_paths(monkeypatch, scenario)
    assert fast == slow == (["a", "stop"], 2, 1)


def test_max_events_honored_mid_batch(monkeypatch):
    """max_events cuts a batch short at exactly the same event as the
    reference loop, and events_fired stays consistent."""

    def scenario(sim):
        trace = []
        for i in range(5):
            sim.schedule(10, trace.append, i)
        fired = sim.run(max_events=3)
        return trace, fired, sim.events_fired

    fast, slow = _both_paths(monkeypatch, scenario)
    assert fast == slow == ([0, 1, 2], 3, 3)


def test_compaction_mid_drain_keeps_batch_coherent():
    """An event that mass-cancels siblings *in the same batch* can trigger
    in-place heap compaction while the drain loop holds its heap local;
    survivors (same and later timestamps) must still fire in order.

    Uses the instance-level ``compact_min_cancelled`` override so the
    sweep triggers at a test-sized heap.
    """
    sim = Simulator()
    sim.compact_min_cancelled = 8
    trace = []
    victims = []

    def massacre():
        trace.append("massacre")
        for h in victims:
            h.cancel()  # crosses the threshold -> _compact() mid-batch

    sim.schedule(10, massacre)
    for i in range(30):
        victims.append(sim.schedule(10, trace.append, f"dead{i}"))
    sim.schedule(10, trace.append, "same-t-survivor")
    sim.schedule(20, trace.append, "later-survivor")
    fired = sim.run()
    assert trace == ["massacre", "same-t-survivor", "later-survivor"]
    assert fired == 3
    assert sim.pending_events == 0 and sim.pending_live_events == 0


def test_compaction_mid_drain_matches_reference(monkeypatch):
    """The mid-drain compaction scenario fires identically under the
    reference loop (which compacts the same way but pops one event at a
    time)."""

    def scenario(sim):
        sim.compact_min_cancelled = 8
        trace = []
        victims = []

        def massacre():
            trace.append(("massacre", sim.now))
            for h in victims[::2]:
                h.cancel()

        sim.schedule(10, massacre)
        for i in range(40):
            victims.append(sim.schedule(10 + (i % 3), trace.append, (i, "v")))
        sim.run()
        return trace

    fast, slow = _both_paths(monkeypatch, scenario)
    assert fast == slow
    assert len(fast) == 1 + 20  # massacre + odd-indexed survivors


def test_probes_fire_between_batches():
    """Probes between two timestamp batches observe the state after the
    whole first batch — including the folded events_fired counter."""
    sim = Simulator()
    seen = []
    for _ in range(3):
        sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    sim.schedule_probe(15, lambda: seen.append((sim.now, sim.events_fired)))
    sim.run()
    assert seen == [(15, 3)]  # all of batch t=10, none of t=20
    assert sim.now == 20


def test_probe_at_batch_timestamp_fires_before_first_live_event():
    """A probe stamped exactly at a batch's timestamp fires before the
    batch's first live event (same as the reference loop: probes drain
    up to t before the event at t runs)."""
    sim = Simulator()
    trace = []
    sim.schedule(10, trace.append, "event")
    sim.schedule_probe(10, lambda: trace.append(("probe", sim.events_fired)))
    sim.run()
    assert trace == [("probe", 0), "event"]


def test_probe_between_batches_matches_reference(monkeypatch):
    """Probe interleaving with zero-delay batch extension is identical
    under both loops: continuations scheduled into the current batch fire
    before a probe stamped between this batch and the next.

    Events record only ``(tag, now)`` — ``events_fired`` is a
    barrier-consistent counter (folded once per batch), so only probes,
    which always run at barriers, may assert on it.
    """

    def scenario(sim):
        trace = []

        def ev(tag):
            trace.append((tag, sim.now))
            if tag == "a":
                sim.schedule(0, ev, "a0")

        sim.schedule(10, ev, "a")
        sim.schedule(30, ev, "b")
        sim.schedule_probe(20, lambda: trace.append(("p", sim.now, sim.events_fired)))
        sim.run()
        return trace

    fast, slow = _both_paths(monkeypatch, scenario)
    assert fast == slow
    assert [t[0] for t in fast] == ["a", "a0", "p", "b"]
