"""Queueing-theory validation: the simulator's baseline queueing agrees
with M/G/c theory.

This is the strongest correctness check we have on the engine's core loop:
drive one Primary VM with steady Poisson arrivals and deterministic-ish
service demand, with all scheduling overheads zeroed, and compare the mean
sojourn time to the analytic M/G/c prediction.
"""

from dataclasses import replace

import pytest

from repro.analysis.queueing import (
    erlang_c,
    mg1_mean_wait,
    mgc_mean_wait,
    mmc_mean_wait,
    utilization,
)
from repro.config import SimulationConfig, SoftwareCosts
from repro.core.experiment import run_server_raw
from repro.core.presets import noharvest


class TestFormulas:
    def test_utilization(self):
        assert utilization(10, 0.1, 2) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            utilization(-1, 0.1, 2)

    def test_erlang_c_limits(self):
        # Light load: almost never waits; heavy load: always waits.
        assert erlang_c(0.1, 0.1, 4) < 1e-4
        assert erlang_c(100, 0.1, 4) == 1.0

    def test_mm1_special_case(self):
        # M/M/1: E[Wq] = rho/(1-rho) * E[S].
        lam, s = 5.0, 0.1
        rho = lam * s
        assert mmc_mean_wait(lam, s, 1) == pytest.approx(rho / (1 - rho) * s)

    def test_pollaczek_khinchine(self):
        # M/D/1 (CV=0) waits half as long as M/M/1 (CV=1).
        lam, s = 5.0, 0.1
        assert mg1_mean_wait(lam, s, 0.0) == pytest.approx(
            mg1_mean_wait(lam, s, 1.0) / 2
        )

    def test_more_servers_less_wait(self):
        assert mmc_mean_wait(30, 0.1, 4) > mmc_mean_wait(30, 0.1, 8)


class TestSimulatorAgreement:
    def test_engine_matches_mgc_prediction(self):
        """A steady-load NoHarvest run's mean queueing delay per VM lands
        near the M/G/c prediction (within the model's fidelity: shared-
        queue approximation via stealing, discrete events, finite run)."""
        # Zero out scheduling overheads so queueing is the only delay.
        free = SoftwareCosts(
            detach_attach_ns=0, context_switch_ns=0, dispatch_delay_ns=0,
            queue_access_ns=0, request_switch_ns=0, reclaim_detect_ns=0,
            rebalance_ns=0, resteer_ns=0,
        )
        system = replace(noharvest(), software_costs=free)
        # Steady load: no bursts (multiplier ~1 via load trace of constant
        # utilization is overkill; instead use load_scale on the MMPP with
        # burst windows suppressed by seeding: we simply raise load_scale
        # and accept mixed rates, then compare per-service).
        simcfg = SimulationConfig(
            horizon_ms=900, warmup_ms=100, accesses_per_segment=8, seed=31,
            load_scale=1.0,
        )
        sim = run_server_raw(system, simcfg)

        checked = 0
        for vm in sim.primary_vms:
            name = vm.profile.name
            rec = sim.latency[name]
            if rec.count < 300:
                continue
            breakdown = sim.breakdowns.mean(name)
            measured_wait_s = breakdown.queueing_ns / 1e9
            # Effective service time: measured execution per segment epoch.
            exec_s = breakdown.execution_ns / 1e9
            segments = vm.profile.segments()
            per_visit = exec_s / segments
            # Each request visits the cores `segments` times; arrival rate
            # of visits is requests/s * segments.
            visits_per_s = rec.count / (sim.end_ns / 1e9 - simcfg.warmup_ms / 1e3)
            visit_rate = visits_per_s * segments
            rho = utilization(visit_rate, per_visit, 4)
            if rho > 0.85:
                continue  # approximation degrades near saturation
            predicted_wait_s = (
                mgc_mean_wait(visit_rate, per_visit, 4, vm.profile.exec_cv)
                * segments
            )
            # Bursty MMPP arrivals wait longer than pure Poisson; accept
            # the band [0.5x, 8x] of the Poisson prediction, and require
            # absolute sanity (< 2ms mean wait at these loads).
            if predicted_wait_s > 1e-6:
                assert measured_wait_s < max(8 * predicted_wait_s, 2e-3), name
            assert measured_wait_s < 2e-3, name
            checked += 1
        assert checked >= 4  # the comparison genuinely ran
