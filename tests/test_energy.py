"""Tests for the runtime energy model."""

import pytest

from repro.analysis.energy import energy_per_batch_unit, estimate_energy
from repro.config import SimulationConfig
from repro.core.experiment import run_server_raw
from repro.core.presets import fig4_no_move, hardharvest_block, noharvest

FAST = SimulationConfig(horizon_ms=70, warmup_ms=10, accesses_per_segment=8, seed=6)


@pytest.fixture(scope="module")
def runs():
    return {
        "NoHarvest": run_server_raw(noharvest(), FAST),
        "HardHarvest-Block": run_server_raw(hardharvest_block(), FAST),
    }


def test_energy_components_positive(runs):
    report = estimate_energy(runs["NoHarvest"])
    assert report.dynamic_j > 0
    assert report.static_j > 0
    assert report.core_active_j > 0
    assert report.total_j == pytest.approx(
        report.dynamic_j + report.static_j + report.core_active_j
    )
    assert report.average_power_w > 0


def test_static_energy_dominates_idle_server(runs):
    """A mostly-idle server's energy is leakage-dominated — the waste
    harvesting attacks."""
    report = estimate_energy(runs["NoHarvest"])
    assert report.static_j > report.core_active_j


def test_harvesting_improves_energy_proportionality(runs):
    """HardHarvest uses more total power but far less energy per unit of
    batch work — the energy-proportionality argument for harvesting."""
    e_base = estimate_energy(runs["NoHarvest"])
    e_hh = estimate_energy(runs["HardHarvest-Block"])
    assert e_hh.average_power_w > e_base.average_power_w
    assert energy_per_batch_unit(runs["HardHarvest-Block"]) < energy_per_batch_unit(
        runs["NoHarvest"]
    )


def test_energy_per_unit_requires_batch_work():
    sim = run_server_raw(fig4_no_move(), FAST)  # idle Harvest VM
    with pytest.raises(ValueError):
        energy_per_batch_unit(sim)
