"""End-to-end tests against a live in-thread service instance.

Each test gets a real socket (ephemeral port), the real asyncio front
end, and a scratch cache directory.  The headline assertions are the
tentpole's acceptance criteria: digests served over HTTP are byte-equal
to the direct runners, duplicate submissions dedupe, queued jobs survive
a restart, and /metrics is valid Prometheus exposition text.
"""

import re

import pytest

from repro.config import SimulationConfig
from repro.service import ServiceClient, ServiceError, start_in_thread

TINY_SIM = {"horizon_ms": 12.0, "warmup_ms": 2.0, "accesses_per_segment": 3}

#: ``name{labels} value`` or a HELP/TYPE comment — one line of valid
#: Prometheus text exposition.
METRIC_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.e+-]+(inf|nan)?)$"
)


@pytest.fixture()
def service(tmp_path):
    handle = start_in_thread(
        cache_dir=str(tmp_path / "cache"), service_workers=2
    )
    try:
        yield handle
    finally:
        handle.stop()


@pytest.fixture()
def client(service):
    return ServiceClient(port=service.port)


def sweep_body(**overrides):
    body = {
        "kind": "sweep",
        "systems": "NoHarvest",
        "seeds": "0..1",
        "simulation": dict(TINY_SIM),
    }
    body.update(overrides)
    return body


# ---------------------------------------------------------------------------
# Plumbing.
# ---------------------------------------------------------------------------
def test_healthz(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["queue_depth"] == 0


def test_unknown_route_404(client):
    with pytest.raises(ServiceError) as excinfo:
        client._checked("GET", "/nope", ok=(200,))
    assert excinfo.value.status == 404


def test_unknown_job_404(client):
    with pytest.raises(ServiceError) as excinfo:
        client.status("deadbeef")
    assert excinfo.value.status == 404


def test_post_invalid_json_400(client):
    status, body = client._request("POST", "/jobs")
    assert status == 400 or body.get("error")  # empty body -> kind missing
    status, body = client._request("GET", "/jobs/x/banana")
    assert status == 404


def test_validation_error_names_field(client):
    with pytest.raises(ServiceError) as excinfo:
        client.submit(sweep_body(simulation={"horizon_ms": -5}))
    assert excinfo.value.status == 400
    assert excinfo.value.body["field"] == "horizon_ms"
    assert "horizon_ms" in excinfo.value.body["error"]


def test_method_not_allowed(client):
    status, _ = client._request("GET", "/jobs")
    assert status == 405


# ---------------------------------------------------------------------------
# The determinism contract over HTTP.
# ---------------------------------------------------------------------------
def test_sweep_digest_matches_direct_runner(client):
    from repro.core.export import sweep_results_digest
    from repro.core.presets import all_systems
    from repro.parallel.runner import run_sweep
    from repro.parallel.sweep import SweepSpec

    submitted = client.submit(sweep_body(workers=2))
    assert submitted["created"] is True
    client.wait(submitted["job_id"], timeout_s=300)
    served = client.result(submitted["job_id"])

    spec = SweepSpec(
        systems={"NoHarvest": all_systems()["NoHarvest"]},
        seeds=(0, 1),
        sim=SimulationConfig(**TINY_SIM),
    )
    direct = run_sweep(spec)
    assert served["digest"] == sweep_results_digest(direct.results)
    assert served["points"] == 2
    assert set(served["results"]) == {"NoHarvest/seed=0", "NoHarvest/seed=1"}


def test_cluster_digest_matches_direct_runner(client):
    from repro.cluster_scale.runner import run_cluster_scale
    from repro.cluster_scale.spec import ClusterScaleConfig, RoutingPolicy
    from repro.config import SystemKind
    from repro.core.presets import build_system

    submitted = client.submit({
        "kind": "cluster",
        "system": "HardHarvest-Block",
        "cluster": {"servers": 2, "requests": 800, "epochs": 2,
                    "routing": "p2c"},
        "simulation": dict(TINY_SIM),
    })
    client.wait(submitted["job_id"], timeout_s=300)
    served = client.result(submitted["job_id"])

    direct = run_cluster_scale(
        build_system(SystemKind.HARDHARVEST_BLOCK),
        sim=SimulationConfig(**TINY_SIM, servers_to_simulate=2),
        cfg=ClusterScaleConfig(
            servers=2, requests=800, epochs=2,
            routing=RoutingPolicy("p2c"),
            epoch_ms=TINY_SIM["horizon_ms"],
            warmup_ms=TINY_SIM["warmup_ms"],
        ),
    )
    assert served["digest"] == direct.digest()
    assert served["summary"]["avg_p99_ms"] == pytest.approx(
        direct.avg_p99_ms()
    )


def test_duplicate_submission_dedupes(client):
    first = client.submit(sweep_body())
    duplicate = client.submit(sweep_body(workers=4))
    assert duplicate["job_id"] == first["job_id"]
    assert duplicate["created"] is False
    client.wait(first["job_id"], timeout_s=300)


def test_result_before_done_is_202(client, service):
    submitted = client.submit(sweep_body(seeds="0..3"))
    status, body = client._request(
        "GET", f"/jobs/{submitted['job_id']}/result"
    )
    # Depending on scheduling the job may already be done; both are legal.
    assert status in (200, 202)
    client.wait(submitted["job_id"], timeout_s=300)


def test_trace_endpoint(client):
    import json

    body = sweep_body(
        seeds="0",
        simulation={**TINY_SIM, "telemetry": {"enabled": True}},
    )
    submitted = client.submit(body)
    client.wait(submitted["job_id"], timeout_s=300)
    trace = json.loads(client.trace(submitted["job_id"]))
    assert trace["traceEvents"]


def test_trace_404_without_telemetry(client):
    submitted = client.submit(sweep_body(seeds="1"))
    client.wait(submitted["job_id"], timeout_s=300)
    with pytest.raises(ServiceError) as excinfo:
        client.trace(submitted["job_id"])
    assert excinfo.value.status == 404
    assert "telemetry" in excinfo.value.body["error"]


# ---------------------------------------------------------------------------
# Metrics.
# ---------------------------------------------------------------------------
def test_metrics_prometheus_validity(client):
    client.wait(client.submit(sweep_body())["job_id"], timeout_s=300)
    client.submit(sweep_body())  # a dedupe, to move that counter
    text = client.metrics()
    for line in text.strip().splitlines():
        assert METRIC_LINE.match(line), f"invalid exposition line: {line!r}"
    for required in (
        "repro_service_queue_depth",
        'repro_service_jobs{state="done"}',
        "repro_cache_hits_total",
        "repro_cache_misses_total",
        "repro_service_deduped_total 1",
        "repro_service_jobs_completed_total 1",
        "repro_service_workers 2",
    ):
        assert required in text, f"missing metric: {required}"


def test_metrics_cache_counters_accumulate(client):
    client.wait(client.submit(sweep_body())["job_id"], timeout_s=300)
    text = client.metrics()
    misses = next(
        float(line.rsplit(None, 1)[1])
        for line in text.splitlines()
        if line.startswith("repro_cache_misses_total")
    )
    assert misses == 2.0  # two points, cold cache


# ---------------------------------------------------------------------------
# Queueing, admission, restart-resume.
# ---------------------------------------------------------------------------
def test_frozen_service_queues_and_resumes(tmp_path):
    """workers=0 freezes jobs as queued; a restarted service runs them."""
    cache_dir = str(tmp_path / "cache")
    frozen = start_in_thread(
        cache_dir=cache_dir, service_workers=0, max_queue=2
    )
    client = ServiceClient(port=frozen.port)
    try:
        submitted = client.submit(sweep_body(seeds="0"))
        assert client.status(submitted["job_id"])["state"] == "queued"
        client.submit(sweep_body(seeds="1"))
        with pytest.raises(ServiceError) as excinfo:
            client.submit(sweep_body(seeds="2"))
        assert excinfo.value.status == 429
    finally:
        frozen.stop()

    revived = start_in_thread(cache_dir=cache_dir, service_workers=2)
    try:
        revived_client = ServiceClient(port=revived.port)
        done = revived_client.wait(submitted["job_id"], timeout_s=300)
        assert done["digest"]
        assert "repro_service_jobs_resumed_total 2" in revived_client.metrics()
    finally:
        revived.stop()


def test_completed_results_survive_restart(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = start_in_thread(cache_dir=cache_dir, service_workers=1)
    client = ServiceClient(port=first.port)
    try:
        job_id = client.submit(sweep_body())["job_id"]
        client.wait(job_id, timeout_s=300)
        digest = client.result(job_id)["digest"]
    finally:
        first.stop()

    second = start_in_thread(cache_dir=cache_dir, service_workers=1)
    try:
        revived_client = ServiceClient(port=second.port)
        assert revived_client.status(job_id)["state"] == "done"
        assert revived_client.result(job_id)["digest"] == digest
        # And the identical submission dedupes onto the finished job.
        resubmitted = revived_client.submit(sweep_body())
        assert resubmitted["job_id"] == job_id
        assert resubmitted["created"] is False
    finally:
        second.stop()


def test_draining_service_rejects_submissions(tmp_path):
    handle = start_in_thread(cache_dir=str(tmp_path / "cache"),
                             service_workers=0)
    client = ServiceClient(port=handle.port)
    handle.stop()
    with pytest.raises(OSError):
        client.healthz()  # socket is gone after shutdown


def test_failed_job_is_409_with_error(tmp_path):
    """A job whose runner raises lands in failed with the error served."""
    handle = start_in_thread(cache_dir=str(tmp_path / "cache"),
                             service_workers=1)
    client = ServiceClient(port=handle.port)
    try:
        # requests_per_service path: valid at submit, but horizon too
        # short for warmup leaves nothing measured -> runner raises.
        body = {
            "kind": "sweep",
            "systems": "NoHarvest",
            "seeds": "0",
            "simulation": {**TINY_SIM, "load_scale": 1e-9},
        }
        submitted = client.submit(body)
        deadline_status = None
        import time as _time

        for _ in range(600):
            deadline_status = client.status(submitted["job_id"])
            if deadline_status["state"] in ("done", "failed"):
                break
            _time.sleep(0.1)
        if deadline_status["state"] == "failed":
            status, body = client._request(
                "GET", f"/jobs/{submitted['job_id']}/result"
            )
            assert status == 409
            assert body["error"]
    finally:
        handle.stop()
