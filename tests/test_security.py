"""Tests for the isolation audits (the paper's security invariants)."""

from dataclasses import replace


from repro.analysis.security import (
    audit_flush_on_idle,
    audit_partition_isolation,
    audit_timing_gate,
)
from repro.config import FlushScope, SimulationConfig
from repro.core.experiment import run_server_raw
from repro.core.presets import harvest_block, hardharvest_block, noharvest
from repro.harvest.costs import CostModel

FAST = SimulationConfig(horizon_ms=90, warmup_ms=15, accesses_per_segment=10, seed=3)


def test_hardharvest_partition_isolation_holds():
    sim = run_server_raw(hardharvest_block(), FAST)
    report = audit_partition_isolation(sim)
    assert report.entries_checked > 1000
    assert report.clean, report.violations[:5]


def test_software_full_flush_leaves_no_residue_on_idle_cores():
    sim = run_server_raw(harvest_block(), FAST)
    report = audit_flush_on_idle(sim)
    assert report.clean, report.violations[:5]


def test_noharvest_trivially_clean():
    sim = run_server_raw(noharvest(), FAST)
    assert audit_partition_isolation(sim).clean
    assert audit_flush_on_idle(sim).clean


def test_insecure_no_flush_config_detected():
    """With FlushScope.NONE (the motivational Figure 4 config is safe only
    because its Harvest VM is idle), an *active* Harvest VM leaves residue
    that the audit catches — demonstrating the audit has teeth."""
    insecure = replace(
        harvest_block(), flush_scope=FlushScope.NONE, name="Insecure"
    )
    sim = run_server_raw(insecure, FAST)
    report = audit_flush_on_idle(sim)
    assert not report.clean


def test_timing_gate_constant_flush_time():
    assert audit_timing_gate(CostModel(hardharvest_block()))
    assert audit_timing_gate(CostModel(harvest_block()))
