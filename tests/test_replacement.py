"""Unit tests for replacement policies, including the paper's Algorithm 1."""

import pytest

from repro.mem.replacement import (
    CacheSet,
    HardHarvestPolicy,
    LruPolicy,
    RripPolicy,
    make_policy,
)


def fill(cset, entries):
    """entries: list of (tag, shared). Fills ways 0..n-1, ascending recency."""
    for way, (tag, shared) in enumerate(entries):
        cset.tags[way] = tag
        cset.valid[way] = True
        cset.shared[way] = shared
        cset.touch(way)


ALL4 = 0b1111


class TestLru:
    def test_invalid_first(self):
        cset = CacheSet(4)
        fill(cset, [(1, False), (2, False)])
        cset.valid[1] = False
        assert LruPolicy().choose_victim(cset, False, ALL4) == 1

    def test_evicts_least_recent(self):
        cset = CacheSet(4)
        fill(cset, [(1, False), (2, False), (3, False), (4, False)])
        policy = LruPolicy()
        policy.on_hit(cset, 0)  # way 0 becomes MRU
        assert policy.choose_victim(cset, False, ALL4) == 1

    def test_respects_allowed_mask(self):
        cset = CacheSet(4)
        fill(cset, [(1, False), (2, False), (3, False), (4, False)])
        # Only ways 2,3 allowed; way 2 is older.
        assert LruPolicy().choose_victim(cset, False, 0b1100) == 2

    def test_empty_mask_raises(self):
        cset = CacheSet(4)
        with pytest.raises(ValueError):
            LruPolicy().choose_victim(cset, False, 0)


class TestRrip:
    def test_insert_then_age_to_eviction(self):
        cset = CacheSet(2)
        policy = RripPolicy()
        for way, tag in enumerate((1, 2)):
            cset.tags[way] = tag
            cset.valid[way] = True
            policy.on_insert(cset, way, False)
        # Both at RRPV=2; aging makes way 0 the first to reach 3.
        victim = policy.choose_victim(cset, False, 0b11)
        assert victim == 0

    def test_hit_promotes(self):
        cset = CacheSet(2)
        policy = RripPolicy()
        for way, tag in enumerate((1, 2)):
            cset.tags[way] = tag
            cset.valid[way] = True
            policy.on_insert(cset, way, False)
        policy.on_hit(cset, 0)  # rrpv[0] = 0
        assert policy.choose_victim(cset, False, 0b11) == 1


class TestHardHarvestAlgorithm1:
    """The cases of Algorithm 1, ways 0-1 = harvest region, 2-3 = non-harvest."""

    HARVEST = 0b0011

    def make(self, candidates=1.0):
        return HardHarvestPolicy(self.HARVEST, candidates)

    def test_empty_slots_shared_prefers_non_harvest(self):
        cset = CacheSet(4)  # all invalid
        assert self.make().choose_victim(cset, True, ALL4) in (2, 3)

    def test_empty_slots_private_prefers_harvest(self):
        cset = CacheSet(4)
        assert self.make().choose_victim(cset, False, ALL4) in (0, 1)

    def test_empty_only_in_wrong_region_still_used(self):
        cset = CacheSet(4)
        fill(cset, [(1, False), (2, False)])  # harvest ways full
        # Private incoming, harvest full, non-harvest empty: take empty.
        assert self.make().choose_victim(cset, False, ALL4) in (2, 3)

    def test_full_set_shared_evicts_private_in_non_harvest_first(self):
        cset = CacheSet(4)
        fill(cset, [(1, True), (2, False), (3, False), (4, True)])
        # Non-harvest ways: 2 (private), 3 (shared). Shared incoming ->
        # evict the private entry in non-harvest (way 2).
        assert self.make().choose_victim(cset, True, ALL4) == 2

    def test_full_set_shared_falls_back_to_private_in_harvest(self):
        cset = CacheSet(4)
        fill(cset, [(1, True), (2, False), (3, True), (4, True)])
        # Non-harvest all shared; harvest way 1 private.
        assert self.make().choose_victim(cset, True, ALL4) == 1

    def test_full_set_private_evicts_private_in_harvest_first(self):
        cset = CacheSet(4)
        fill(cset, [(1, True), (2, False), (3, False), (4, True)])
        # Harvest ways: 0 shared, 1 private. Private incoming -> way 1.
        assert self.make().choose_victim(cset, False, ALL4) == 1

    def test_full_set_private_falls_back_to_non_harvest_private(self):
        cset = CacheSet(4)
        fill(cset, [(1, True), (2, True), (3, False), (4, True)])
        assert self.make().choose_victim(cset, False, ALL4) == 2

    def test_all_shared_falls_back_to_lru(self):
        cset = CacheSet(4)
        fill(cset, [(1, True), (2, True), (3, True), (4, True)])
        policy = self.make()
        assert policy.choose_victim(cset, True, ALL4) == 0  # LRU
        cset.touch(0)
        assert policy.choose_victim(cset, True, ALL4) == 1

    def test_eviction_candidate_window_protects_mru_private(self):
        """With M=50%, only the 2 LRU ways are candidates: a recently-used
        private entry escapes eviction even though Algorithm 1 would
        otherwise target it."""
        cset = CacheSet(4)
        fill(cset, [(1, True), (2, True), (3, True), (4, False)])
        # way 3 is private but MRU; window = 2 LRU ways = {0, 1}, all shared
        # -> LRU of candidates (way 0), not the private way 3.
        policy = self.make(candidates=0.5)
        assert policy.choose_victim(cset, True, ALL4) == 0

    def test_window_full_still_finds_private(self):
        cset = CacheSet(4)
        fill(cset, [(1, False), (2, True), (3, True), (4, True)])
        # window = {0,1}; way 0 private & in harvest; shared incoming:
        # non-harvest candidates (none private) -> harvest private way 0.
        policy = self.make(candidates=0.5)
        assert policy.choose_victim(cset, True, ALL4) == 0

    def test_harvest_only_mask(self):
        """A Harvest VM restricted to harvest ways never evicts outside."""
        cset = CacheSet(4)
        fill(cset, [(1, True), (2, True), (3, False), (4, False)])
        policy = self.make()
        victim = policy.choose_victim(cset, False, self.HARVEST)
        assert victim in (0, 1)

    def test_degenerate_no_harvest_region_prefers_private_eviction(self):
        """With harvest_mask=0 (Figure 15's +ReplPolicy without
        partitioning), the policy still prefers evicting private entries."""
        cset = CacheSet(4)
        fill(cset, [(1, True), (2, False), (3, True), (4, True)])
        policy = HardHarvestPolicy(0, 1.0)
        assert policy.choose_victim(cset, True, ALL4) == 1

    def test_bad_candidate_fraction_rejected(self):
        with pytest.raises(ValueError):
            HardHarvestPolicy(0b11, 0.0)
        with pytest.raises(ValueError):
            HardHarvestPolicy(0b11, 1.5)


class TestFactory:
    def test_make_policy(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("rrip"), RripPolicy)
        assert isinstance(make_policy("hardharvest", 0b11), HardHarvestPolicy)
        with pytest.raises(ValueError):
            make_policy("belady")
