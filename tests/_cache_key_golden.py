"""Cases + generator for the cache-key stability golden.

``tests/data/golden_cache_keys.json`` pins the sha256 cache key of a
spread of representative sweep-point payloads under a *fixed* version
string, computed via the legacy full-payload path
(``ResultCache.key(point.payload())``).  The tests then hold the
split-key fast path (:meth:`SweepPoint.payload_json` +
:meth:`ResultCache.key_json`) to those exact hex digests — if fragment
assembly ever drifts from ``canonical_json`` by a single byte, existing
on-disk caches would silently stop hitting, and this golden catches it.

The pinned version is the literal string ``"golden"`` (not the package
version), so routine version bumps never touch the pins; only an
intentional change to payload encoding or key derivation should.

Regenerate with ``PYTHONPATH=src python tests/_cache_key_golden.py --write``.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, Iterator, Tuple

from repro.config import SimulationConfig
from repro.core.presets import all_systems
from repro.faults.scenarios import get_scenario
from repro.parallel.sweep import SweepPoint
from repro.workloads.batch import BATCH_JOBS

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "golden_cache_keys.json"
)

#: The version string baked into every pinned key.
GOLDEN_VERSION = "golden"


def all_cases() -> Iterator[Tuple[str, SweepPoint]]:
    """(label, point) pairs spanning the payload feature space."""
    systems = all_systems()
    plain = SimulationConfig(seed=0, horizon_ms=5.0)
    for name, system in systems.items():
        yield f"{name}/plain", SweepPoint(
            label="x", system=system, sim=plain
        )
    hh = systems["HardHarvest-Block"]
    yield "HardHarvest-Block/override", SweepPoint(
        label="x",
        system=hh,
        sim=SimulationConfig(
            seed=2, horizon_ms=8.0, load_scale=1.5, accesses_per_segment=2,
            suite="hotel",
        ),
    )
    storm = get_scenario("crash-storm", 50.0)
    yield "HardHarvest-Block/crash-storm", SweepPoint(
        label="x",
        system=hh,
        sim=dataclasses.replace(
            plain, faults=storm.schedule, client=storm.client
        ),
    )
    yield "HardHarvest-Block/batch+server7", SweepPoint(
        label="x",
        system=hh,
        sim=plain,
        batch_job=BATCH_JOBS[0],
        server_index=7,
    )


def compute_keys() -> Dict[str, str]:
    """Legacy-path keys for every case under the golden version."""
    from repro.parallel.cache import ResultCache

    cache = ResultCache(root="/nonexistent", version=GOLDEN_VERSION)
    return {label: cache.key(point.payload()) for label, point in all_cases()}


def load_golden() -> Dict[str, str]:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


if __name__ == "__main__":
    import sys

    keys = compute_keys()
    if "--write" in sys.argv:
        with open(GOLDEN_PATH, "w") as fh:
            json.dump(keys, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {GOLDEN_PATH} ({len(keys)} pins)")
    else:
        print(json.dumps(keys, indent=2, sort_keys=True))
