"""Tests for the HardHarvest controller, QMs, VM state, context memory."""

import pytest

from repro.config import ControllerConfig
from repro.hw.context import RequestContextMemory, SavedContext
from repro.hw.controller import HardHarvestController
from repro.hw.noc import ControlTree, MeshNetwork
from repro.hw.queue_manager import HarvestMaskRegister
from repro.hw.vm_state import NAMED_REGISTERS, VmStateRegisterSet


def make_controller():
    return HardHarvestController(ControllerConfig(), num_cores=36)


class TestControllerLifecycle:
    def test_register_allocates_proportional_chunks(self):
        ctrl = make_controller()
        qm1 = ctrl.register_vm(0, True, 4)
        # First VM: all bound cores are its own -> all 32 chunks.
        assert len(qm1.subqueue.rq_map) == 32
        qm2 = ctrl.register_vm(1, True, 4)
        # Second VM: half the cores -> gets 16 chunks from VM 0's tail.
        assert len(qm2.subqueue.rq_map) == 16
        assert ctrl.rq.chunk_owner_invariant()

    def test_full_server_registration(self):
        """8 Primary VMs (4 cores) + 1 Harvest VM (4 cores): paper setup."""
        ctrl = make_controller()
        for vm in range(8):
            ctrl.register_vm(vm, True, 4)
        ctrl.register_vm(8, False, 4)
        assert len(ctrl.primary_qms()) == 8
        assert len(ctrl.harvest_qms()) == 1
        assert ctrl.rq.chunk_owner_invariant()
        # Each VM ends up with at least one chunk.
        for qm in ctrl.qms.values():
            assert len(qm.subqueue.rq_map) >= 1

    def test_qm_limit_enforced(self):
        ctrl = HardHarvestController(
            ControllerConfig(num_queue_managers=2), num_cores=8
        )
        ctrl.register_vm(0, True, 2)
        ctrl.register_vm(1, True, 2)
        with pytest.raises(RuntimeError):
            ctrl.register_vm(2, True, 2)

    def test_deregister_frees_qm(self):
        ctrl = make_controller()
        ctrl.register_vm(0, True, 4)
        ctrl.register_vm(1, True, 4)
        ctrl.deregister_vm(0)
        with pytest.raises(KeyError):
            ctrl.qm_for(0)
        assert ctrl.rq.chunk_owner_invariant()

    def test_deliver_routes_to_right_subqueue(self):
        ctrl = make_controller()
        ctrl.register_vm(0, True, 4)
        ctrl.register_vm(1, True, 4)
        ctrl.deliver(1, "req-a")
        assert ctrl.qm_for(1).has_ready()
        assert not ctrl.qm_for(0).has_ready()
        assert ctrl.qm_for(1).dequeue() == "req-a"


class TestQueueManagerLoans:
    def test_lend_and_reclaim_bookkeeping(self):
        ctrl = make_controller()
        qm = ctrl.register_vm(0, True, 4)
        qm.bind_core(3)
        qm.lend_core(3)
        assert 3 in qm.on_loan
        with pytest.raises(ValueError):
            qm.lend_core(3)  # already on loan
        qm.reclaim_core(3)
        assert 3 not in qm.on_loan
        with pytest.raises(ValueError):
            qm.reclaim_core(3)

    def test_lend_unbound_core_rejected(self):
        ctrl = make_controller()
        qm = ctrl.register_vm(0, True, 4)
        with pytest.raises(ValueError):
            qm.lend_core(7)


class TestVmStateRegisters:
    def test_named_registers_distinct_per_vm(self):
        a, b = VmStateRegisterSet(), VmStateRegisterSet()
        a.load_for_vm(1)
        b.load_for_vm(2)
        assert a.read("CR3") != b.read("CR3")
        assert set(a.snapshot()) == set(NAMED_REGISTERS)

    def test_register_width_enforced(self):
        regs = VmStateRegisterSet()
        with pytest.raises(ValueError):
            regs.write("CR0", 1 << 64)

    def test_spare_slots_bounded(self):
        regs = VmStateRegisterSet(num_registers=8)
        regs.write("EXTRA", 1)
        with pytest.raises(KeyError):
            regs.write("TOO_MANY_%d" % 99, 1)  # only 1 spare beyond named

    def test_storage_bytes(self):
        assert VmStateRegisterSet(16, 8).storage_bytes == 128


class TestHarvestMask:
    def test_set_get(self):
        m = HarvestMaskRegister()
        m.set_mask("l2", 0b1111)
        assert m.get_mask("l2") == 0b1111
        with pytest.raises(KeyError):
            m.set_mask("l9", 1)
        with pytest.raises(ValueError):
            m.set_mask("l2", 1 << 16)
        assert m.storage_bytes == 5


class TestContextMemory:
    def test_save_restore_roundtrip(self):
        mem = RequestContextMemory(capacity=2)
        ctx = SavedContext(request="r", vm_id=3, program_counter=99)
        slot = mem.save(ctx)
        assert mem.occupancy == 1
        restored = mem.restore(slot)
        assert restored.program_counter == 99
        assert mem.occupancy == 0
        with pytest.raises(KeyError):
            mem.restore(slot)

    def test_capacity_enforced(self):
        mem = RequestContextMemory(capacity=1)
        mem.save(SavedContext("a", 0))
        with pytest.raises(RuntimeError):
            mem.save(SavedContext("b", 0))

    def test_highwater(self):
        mem = RequestContextMemory(capacity=4)
        slots = [mem.save(SavedContext(i, 0)) for i in range(3)]
        for s in slots:
            mem.restore(s)
        assert mem.highwater == 3


class TestNoc:
    def test_mesh_hops(self):
        mesh = MeshNetwork(36, hop_cycles=5, freq_ghz=3.0)
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 35) == 10  # corner to corner of 6x6
        assert mesh.latency_ns(0, 35) == pytest.approx(50 / 3, abs=1)

    def test_mesh_out_of_range(self):
        mesh = MeshNetwork(36, 5, 3.0)
        with pytest.raises(ValueError):
            mesh.hops(0, 36)

    def test_control_tree_log_depth(self):
        tree = ControlTree(36, 3.0)
        assert tree.levels == 6
        assert tree.latency_ns() == 2
