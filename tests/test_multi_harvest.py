"""Tests: multiple Harvest VMs per server (the controller supports 16 QMs;
the engine multiplexes lends round-robin among Harvest VMs)."""

from dataclasses import replace

import pytest

from repro.analysis.security import audit_partition_isolation
from repro.config import ClusterConfig, SimulationConfig
from repro.core.experiment import run_server_raw
from repro.core.presets import hardharvest_block, noharvest

FAST = SimulationConfig(horizon_ms=80, warmup_ms=15, accesses_per_segment=8, seed=19)


def two_harvest(system):
    # 8x4 primary + 2x2 harvest base = 36 cores.
    return replace(
        system,
        cluster=ClusterConfig(
            harvest_vms_per_server=2, harvest_vm_base_cores=2
        ),
    )


def test_two_harvest_vms_coexist():
    sim = run_server_raw(two_harvest(hardharvest_block()), FAST)
    assert len(sim.harvest_vms) == 2
    # Different batch jobs landed on the two VMs.
    assert sim.harvest_vms[0].name != sim.harvest_vms[1].name
    # Both made progress on their base cores at minimum.
    for hvm in sim.harvest_vms:
        assert hvm.units_completed > 0
    # Controller registered 10 QMs: 8 primary + 2 harvest.
    assert len(sim.controller.qms) == 10
    assert len(sim.controller.harvest_qms()) == 2


def test_lends_shared_between_harvest_vms():
    sim = run_server_raw(two_harvest(hardharvest_block()), FAST)
    # Round-robin lending: both harvest VMs ran borrowed work. Detect via
    # preemptions (only loaned cores are preempted).
    preempted = [hvm.preemptions for hvm in sim.harvest_vms]
    assert all(p > 0 for p in preempted)


def test_total_throughput_sums_vms():
    sim = run_server_raw(two_harvest(hardharvest_block()), FAST)
    expected = sum(h.units_completed for h in sim.harvest_vms)
    assert sim.batch_throughput_per_s() == pytest.approx(
        expected / (sim.end_ns / 1e9)
    )


def test_isolation_holds_with_two_harvest_vms():
    sim = run_server_raw(two_harvest(hardharvest_block()), FAST)
    report = audit_partition_isolation(sim)
    assert report.clean, report.violations[:5]


def test_core_demand_validation():
    with pytest.raises(ValueError):
        ClusterConfig(harvest_vms_per_server=3, harvest_vm_base_cores=4)


def test_single_harvest_unchanged():
    sim = run_server_raw(noharvest(), FAST)
    assert len(sim.harvest_vms) == 1
    assert sim.harvest_vm is sim.harvest_vms[0]
