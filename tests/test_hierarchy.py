"""Tests for the per-core hierarchy: access path, partitioning, flushing."""


from repro.config import HierarchyConfig, MemoryConfig, PartitionConfig, ReplacementKind
from repro.mem.address import AddressSpace
from repro.mem.dram import DramModel
from repro.mem.hierarchy import CoreMemory, build_llc


def make_memory(partition=None, infinite=False):
    from dataclasses import replace

    hierarchy = HierarchyConfig()
    if infinite:
        hierarchy = replace(hierarchy, infinite=True)
    part = partition or PartitionConfig()
    return CoreMemory(hierarchy, part, DramModel(MemoryConfig()))


def test_first_access_misses_then_hits():
    mem = make_memory()
    llc = build_llc("llc", HierarchyConfig(), 4)
    addr = 0x1000
    cold = mem.access(addr, False, False, llc, True, 0)
    warm = mem.access(addr, False, False, llc, True, 0)
    assert cold > warm
    # Warm access: L1 TLB (2 cyc) + L1D (5 cyc) at 3 GHz ~ 2ns.
    assert warm <= 5


def test_miss_latency_increases_with_depth():
    mem = make_memory()
    llc = build_llc("llc", HierarchyConfig(), 4)
    addr = 0x2000
    first = mem.access(addr, False, False, llc, True, 0)  # DRAM fill
    assert first >= mem.hierarchy.memory.access_ns


def test_instruction_accesses_use_l1i():
    mem = make_memory()
    llc = build_llc("llc", HierarchyConfig(), 4)
    mem.access(0x3000, True, True, llc, True, 0)
    assert mem.l1i.array.accesses == 1
    assert mem.l1d.array.accesses == 0


def test_infinite_mode_constant_latency():
    mem = make_memory(infinite=True)
    lat1 = mem.access(0x1000, False, False, None, True, 0)
    lat2 = mem.access(0x9999000, False, False, None, True, 0)
    assert lat1 == lat2


def test_full_flush_forces_cold_restart():
    mem = make_memory()
    llc = build_llc("llc", HierarchyConfig(), 4)
    addr = 0x4000
    mem.access(addr, False, False, llc, True, 0)
    warm = mem.access(addr, False, False, llc, True, 0)
    mem.flush_private_full()
    cold = mem.access(addr, False, False, llc, True, 0)
    assert cold > warm
    # But the LLC still holds the line: cold restart is cheaper than DRAM.
    assert cold < mem.hierarchy.memory.access_ns


class TestPartitionedAccess:
    PART = PartitionConfig(
        enabled=True,
        harvest_fraction=0.5,
        replacement=ReplacementKind.HARDHARVEST,
    )

    def test_harvest_vm_confined_to_harvest_ways(self):
        mem = make_memory(self.PART)
        llc = build_llc("llc", HierarchyConfig(), 4)
        # Fill many conflicting lines as a Harvest VM (is_primary=False).
        space = AddressSpace(9)
        region = space.alloc(64, shared=False)
        for page in range(64):
            mem.access(region.addr(page), False, False, llc, False, 0)
        # Nothing may live in non-harvest ways of the L1D.
        mem.l1d.array.settle()
        for cset in mem.l1d.array.sets.values():
            for way in range(cset.ways):
                if cset.valid[way]:
                    assert (mem.part_l1d.harvest >> way) & 1

    def test_region_flush_preserves_non_harvest_state(self):
        mem = make_memory(self.PART)
        llc = build_llc("llc", HierarchyConfig(), 4)
        space = AddressSpace(1)
        shared = space.alloc(4, shared=True)
        addr = shared.addr(0)
        mem.access(addr, True, False, llc, True, 0)  # shared -> non-harvest
        mem.flush_harvest_region()
        warm = mem.access(addr, True, False, llc, True, 0)
        assert warm <= 5  # still an L1 hit

    def test_region_flush_clears_harvest_state(self):
        mem = make_memory(self.PART)
        llc = build_llc("llc", HierarchyConfig(), 4)
        space = AddressSpace(9)
        private = space.alloc(1, shared=False)
        addr = private.addr(0)
        mem.access(addr, False, False, llc, False, 0)  # harvest ways only
        assert mem.l1d.probe(addr, mem.part_l1d.all_ways)
        mem.flush_harvest_region()
        assert not mem.l1d.probe(addr, mem.part_l1d.all_ways)


def test_build_llc_scales_with_cores():
    llc4 = build_llc("a", HierarchyConfig(), 4)
    llc1 = build_llc("b", HierarchyConfig(), 1)
    assert llc4.array.num_sets == 4 * llc1.array.num_sets


def test_hierarchy_scaling_fig7():
    h = HierarchyConfig()
    half = h.scaled(0.5)
    assert half.l1d.ways == 6
    assert half.l2.ways == 4
    assert half.l1d.num_sets == h.l1d.num_sets  # sets constant
    assert half.l2_tlb.entries == 1024


def test_llc_size_override_fig18():
    h = HierarchyConfig().with_llc_mb_per_core(0.5)
    assert h.llc_per_core.size_bytes == 512 * 1024
    assert h.llc_per_core.ways == 16
