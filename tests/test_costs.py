"""Tests for the transition cost model (lend/reclaim/dispatch)."""

import numpy as np

from repro.config import (
    FlushScope,
    HierarchyConfig,
    MemoryConfig,
    OptimizationFlags,
    PartitionConfig,
    ReplacementKind,
    SoftwareCosts,
    SystemConfig,
)
from repro.harvest.costs import CostModel
from repro.mem.dram import DramModel
from repro.mem.hierarchy import CoreMemory
from repro.sim.units import MS, US


def make_memory(partition=None):
    return CoreMemory(
        HierarchyConfig(), partition or PartitionConfig(), DramModel(MemoryConfig())
    )


def software_system(**kw):
    return SystemConfig(flush_scope=FlushScope.FULL, **kw)


def hardware_system(flush=True, background=True):
    from dataclasses import replace

    cfg = SystemConfig(
        hardware_scheduling=True,
        flags=OptimizationFlags.all(),
        flush_scope=FlushScope.HARVEST_REGION,
        partition=PartitionConfig(
            enabled=True, replacement=ReplacementKind.HARDHARVEST
        ),
    )
    if not flush:
        cfg = replace(cfg, flags=OptimizationFlags(True, True, True, True, False, True))
    if not background:
        cfg = replace(cfg, flush_costs=replace(cfg.flush_costs, background_region_flush=False))
    return cfg


RNG = np.random.default_rng(0)


class TestSoftwareCosts:
    def test_reclaim_includes_detach_context_flush(self):
        model = CostModel(software_system())
        cost = model.reclaim_cost(make_memory())
        sw = model.sw
        assert cost.reassign_ns >= sw.detach_attach_ns + sw.context_switch_ns
        assert cost.flush_ns == model.fl.full_flush_ns

    def test_reclaim_detection_delay_with_rng(self):
        model = CostModel(software_system())
        sw = model.sw
        samples = [
            model.reclaim_cost(make_memory(), np.random.default_rng(i)).reassign_ns
            for i in range(50)
        ]
        base = sw.detach_attach_ns + sw.context_switch_ns
        extras = [s - base for s in samples]
        assert min(extras) >= 0
        assert max(extras) > sw.reclaim_detect_ns / 2
        assert len(set(extras)) > 10  # genuinely random

    def test_flush_applies_full_invalidation(self):
        model = CostModel(software_system())
        mem = make_memory()
        from repro.mem.hierarchy import build_llc

        llc = build_llc("llc", HierarchyConfig(), 4)
        mem.access(0x1000, False, False, llc, True, 0)
        cost = model.reclaim_cost(mem)
        cost.flush()
        assert mem.l1d.array.occupancy() == 0

    def test_dispatch_has_polling_delay(self):
        model = CostModel(software_system())
        delays = [model.dispatch_ns(np.random.default_rng(i)) for i in range(100)]
        sw = SoftwareCosts()
        floor = sw.queue_access_ns + sw.request_switch_ns
        assert min(delays) >= floor
        mean = sum(delays) / len(delays)
        assert mean > floor + sw.dispatch_delay_ns * 0.5


class TestHardwareCosts:
    def test_reclaim_is_tens_of_ns_with_background_flush(self):
        model = CostModel(hardware_system())
        cost = model.reclaim_cost(make_memory(model.system.partition))
        assert cost.flush_ns == 0  # background
        assert cost.critical_ns < 1 * US

    def test_lend_flush_on_harvest_critical_path(self):
        model = CostModel(hardware_system())
        cost = model.lend_cost(make_memory(model.system.partition))
        # 1000 cycles at 3 GHz = 333 ns: the side-channel gate.
        assert 200 < cost.flush_ns < 500

    def test_partition_without_efficient_flush_pays_proportional_cost(self):
        model = CostModel(hardware_system(flush=False))
        cost = model.reclaim_cost(make_memory(model.system.partition))
        expected = int(model.fl.full_flush_ns * model.system.partition.harvest_fraction)
        assert cost.flush_ns == expected

    def test_region_flush_only_touches_harvest_ways(self):
        model = CostModel(hardware_system())
        mem = make_memory(model.system.partition)
        from repro.mem.hierarchy import build_llc

        llc = build_llc("llc", HierarchyConfig(), 4)
        # Shared entry -> non-harvest region.
        mem.access(0x1000, True, False, llc, True, 0)
        cost = model.reclaim_cost(mem)
        cost.flush()
        assert mem.l1d.probe(0x1000, mem.part_l1d.all_ways)

    def test_hw_vs_sw_reclaim_gap_is_orders_of_magnitude(self):
        hw = CostModel(hardware_system()).reclaim_cost(make_memory())
        sw = CostModel(software_system()).reclaim_cost(
            make_memory(), np.random.default_rng(1)
        )
        assert sw.critical_ns > 100 * hw.critical_ns


class TestAblationPoints:
    def test_sched_only_removes_hypervisor_but_keeps_sw_context(self):
        flags = OptimizationFlags(sched=True)
        model = CostModel(SystemConfig(flags=flags))
        cost = model.reclaim_cost(make_memory())
        # A few µs (hardware scheduling, software save/restore).
        assert cost.reassign_ns < 10 * US

    def test_ctxtsw_only_keeps_detach_cost(self):
        flags = OptimizationFlags(ctxtsw=True)
        model = CostModel(SystemConfig(flags=flags))
        cost = model.reclaim_cost(make_memory(), np.random.default_rng(2))
        # Detach/attach via hypervisor remains; context switch is hardware.
        assert cost.reassign_ns >= model.sw.detach_attach_ns
        assert cost.reassign_ns < model.sw.detach_attach_ns + 40 * MS

    def test_queue_flag_lowers_dispatch(self):
        base = CostModel(SystemConfig(flags=OptimizationFlags(sched=True)))
        fast = CostModel(
            SystemConfig(flags=OptimizationFlags(sched=True, queue=True, ctxtsw=True))
        )
        d_base = base.dispatch_ns(np.random.default_rng(0))
        d_fast = fast.dispatch_ns(np.random.default_rng(0))
        assert d_fast < d_base
