"""Tests for the coherence directory (Section 4.2.1's invalidation claim)."""

import pytest

from repro.mem.cache import Cache
from repro.mem.coherence import Directory
from repro.mem.partition import WayPartition, full_mask
from repro.mem.replacement import HardHarvestPolicy, LruPolicy


def make_cache(partitioned=False):
    if partitioned:
        part = WayPartition.split(4, 0.5)
        return Cache("L1", 4 * 4 * 64, 4, 64, 5, HardHarvestPolicy(part.harvest, 0.75)), part
    return Cache("L1", 4 * 4 * 64, 4, 64, 5, LruPolicy()), WayPartition.unpartitioned(4)


def test_write_invalidates_other_sharers():
    d = Directory()
    c0, _ = make_cache()
    c1, _ = make_cache()
    d.register_core(0, [c0])
    d.register_core(1, [c1])
    allowed = full_mask(4)
    d.read(0, 0x1000, True, allowed)
    d.read(1, 0x1000, True, allowed)
    assert d.sharers_of(0x1000) == {0, 1}
    sent = d.write(0, 0x1000, True, allowed)
    assert sent == 1
    assert not c1.probe(0x1000, allowed)
    assert c0.probe(0x1000, allowed)
    assert d.sharers_of(0x1000) == {0}


def test_invalidation_reaches_non_harvest_ways():
    """The paper's claim: partitioning does not block coherence — a line
    protected in the non-harvest region is still invalidated on a remote
    write."""
    d = Directory()
    c0, part = make_cache(partitioned=True)
    c1, _ = make_cache(partitioned=True)
    d.register_core(0, [c0])
    d.register_core(1, [c1])
    # Shared entry lands in a NON-harvest way of core 0 (Algorithm 1).
    d.read(0, 0x2000, True, full_mask(4))
    set_index, tag = c0.locate(0x2000)
    way = c0.array.sets[set_index].find(tag, full_mask(4))
    assert (part.non_harvest >> way) & 1  # it really is protected
    # Remote write must still kill it.
    d.write(1, 0x2000, True, full_mask(4))
    assert not c0.probe(0x2000, full_mask(4))


def test_invalidation_survives_pending_lazy_flush():
    d = Directory()
    c0, _ = make_cache()
    c1, _ = make_cache()
    d.register_core(0, [c0])
    d.register_core(1, [c1])
    allowed = full_mask(4)
    d.read(1, 0x3000, False, allowed)
    c1.flush_ways(0b0001)  # pending lazy flush on one way
    sent = d.write(0, 0x3000, False, allowed)
    assert not c1.probe(0x3000, allowed)
    assert sent in (0, 1)  # flushed-away copies need no message


def test_unregistered_core_rejected():
    d = Directory()
    with pytest.raises(KeyError):
        d.read(0, 0x0, False, 0b1111)
    c, _ = make_cache()
    d.register_core(0, [c])
    with pytest.raises(ValueError):
        d.register_core(0, [c])


def test_writer_becomes_sole_sharer():
    d = Directory()
    caches = []
    for i in range(3):
        c, _ = make_cache()
        caches.append(c)
        d.register_core(i, [c])
    allowed = full_mask(4)
    for i in range(3):
        d.read(i, 0x4000, False, allowed)
    d.write(2, 0x4000, False, allowed)
    assert d.sharers_of(0x4000) == {2}
    assert d.invalidations_sent == 2
