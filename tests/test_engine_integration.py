"""Integration tests: the full per-server engine under each system."""

import pytest

from repro.config import (
    HarvestTrigger,
    SimulationConfig,
    SystemKind,
)
from repro.cluster.server import ServerSimulation
from repro.core.experiment import run_server, run_server_raw, run_systems
from repro.core.presets import (
    all_systems,
    build_system,
    harvest_block,
    harvest_term,
    hardharvest_block,
    hardharvest_term,
    noharvest,
)

FAST = SimulationConfig(
    horizon_ms=120, warmup_ms=20, accesses_per_segment=12, seed=7
)


@pytest.fixture(scope="module")
def results():
    """One fast run of each evaluated system on the identical workload."""
    return run_systems(all_systems(), FAST)


def test_all_requests_complete(results):
    for name, res in results.items():
        assert res.counters.get("horizon_cap_hit", 0) == 0, name
        for svc, p99 in res.p99_ms.items():
            assert p99 > 0, (name, svc)


def test_identical_workload_across_systems():
    """Same seed => same arrivals and demands regardless of the system."""
    sims = [
        ServerSimulation(noharvest(), FAST),
        ServerSimulation(hardharvest_block(), FAST),
    ]
    counts = [sim._target_completions for sim in sims]
    assert counts[0] == counts[1]


def test_noharvest_never_lends(results):
    assert results["NoHarvest"].counters.get("lends", 0) == 0
    assert results["NoHarvest"].counters.get("reclaims", 0) == 0


def test_harvesting_systems_do_lend(results):
    for name in ("Harvest-Term", "Harvest-Block", "HardHarvest-Term", "HardHarvest-Block"):
        assert results[name].counters.get("lends", 0) > 0, name


def test_hardware_lends_far_more_than_software(results):
    assert (
        results["HardHarvest-Block"].counters["lends"]
        > 5 * results["Harvest-Block"].counters["lends"]
    )


def test_block_mode_lends_more_than_term(results):
    assert (
        results["HardHarvest-Block"].counters["lends"]
        > results["HardHarvest-Term"].counters["lends"]
    )


def test_utilization_ordering(results):
    """NoHarvest < software < HardHarvest; Block >= Term for HardHarvest."""
    busy = {k: r.avg_busy_cores for k, r in results.items()}
    assert busy["NoHarvest"] < busy["Harvest-Term"]
    assert busy["NoHarvest"] < busy["Harvest-Block"]
    assert busy["Harvest-Term"] < busy["HardHarvest-Block"]
    assert busy["HardHarvest-Term"] <= busy["HardHarvest-Block"] + 0.5


def test_throughput_ordering(results):
    thr = {k: r.batch_units_per_s for k, r in results.items()}
    assert thr["NoHarvest"] < thr["Harvest-Term"]
    assert thr["Harvest-Block"] < thr["HardHarvest-Block"]


def test_hardharvest_tail_not_worse_than_noharvest(results):
    assert (
        results["HardHarvest-Block"].avg_p99_ms()
        <= results["NoHarvest"].avg_p99_ms() * 1.05
    )


def test_software_tail_worse_than_hardharvest(results):
    assert (
        results["Harvest-Block"].avg_p99_ms()
        > results["HardHarvest-Block"].avg_p99_ms()
    )


def test_breakdown_components_present(results):
    res = results["Harvest-Block"]
    total_reassign = sum(b.reassign_ns for b in res.breakdown.values())
    assert total_reassign > 0
    res0 = results["NoHarvest"]
    assert sum(b.reassign_ns for b in res0.breakdown.values()) == 0
    for b in res0.breakdown.values():
        assert b.execution_ns > 0


def test_build_system_presets():
    for kind in SystemKind:
        cfg = build_system(kind)
        assert cfg.name == kind.value


def test_run_server_raw_exposes_simulation():
    sim = run_server_raw(noharvest(), FAST)
    assert sim.end_ns > 0
    assert len(sim.cores) == 36
    assert len(sim.primary_vms) == 8
    # 8*4 primary cores + 4 harvest base cores.
    assert sum(len(vm.cores) for vm in sim.primary_vms) == 32
    assert len(sim.harvest_vm.cores) == 4


def test_queue_state_drained_at_end():
    sim = run_server_raw(hardharvest_block(), FAST)
    for vm in sim.primary_vms:
        assert vm.queue.pending() == 0


def test_conservation_of_requests():
    sim = run_server_raw(harvest_block(), FAST)
    assert sim._completions == sim._target_completions


def test_loaned_cores_all_returned_or_tracked():
    sim = run_server_raw(hardharvest_block(), FAST)
    # At the end every core is in a consistent state.
    for core in sim.cores:
        assert core.state in ("idle", "busy", "switching")
        if core.on_loan:
            owner = sim.vms_by_id[core.owner_vm_id]
            assert core in owner.loaned_cores()


def test_smartharvest_agent_selected_for_software():
    sim = ServerSimulation(harvest_term(), FAST)
    assert sim.agent.name == "smartharvest"
    sim2 = ServerSimulation(hardharvest_term(), FAST)
    assert sim2.agent.name == "hardharvest"
    sim3 = ServerSimulation(noharvest(), FAST)
    assert sim3.agent.name == "noharvest"


def test_hardware_systems_use_controller():
    sim = ServerSimulation(hardharvest_block(), FAST)
    assert sim.controller is not None
    assert len(sim.controller.qms) == 9  # 8 primary + 1 harvest
    sim2 = ServerSimulation(harvest_block(), FAST)
    assert sim2.controller is None


def test_batch_inactive_mode():
    from repro.core.presets import fig4_opt

    res = run_server(fig4_opt(HarvestTrigger.ON_BLOCK), FAST)
    assert res.batch_units_per_s == 0.0
    assert res.counters.get("lends", 0) > 0  # cores still move


def test_deterministic_given_seed():
    r1 = run_server(hardharvest_block(), FAST)
    r2 = run_server(hardharvest_block(), FAST)
    assert r1.p99_ms == r2.p99_ms
    assert r1.avg_busy_cores == r2.avg_busy_cores
    assert r1.counters == r2.counters
