"""Tests for the adaptive harvesting trigger (Section 4.1.5 future work)."""

from dataclasses import replace

import pytest

from repro.config import SimulationConfig
from repro.core.experiment import run_server, run_server_raw
from repro.core.presets import hardharvest_block
from repro.harvest.adaptive import AdaptiveAgent
from repro.sim.units import US

FAST = SimulationConfig(horizon_ms=100, warmup_ms=20, accesses_per_segment=10, seed=5)


def adaptive_system(**kw):
    return replace(hardharvest_block(), adaptive_trigger=True, **kw)


class TestAgentUnit:
    def test_term_always_lendable(self):
        agent = AdaptiveAgent()

        class FakeCore:
            owner_vm_id = 0

        assert agent.on_core_idle(FakeCore(), "term") is True

    def test_short_blocks_suppress_lending(self):
        agent = AdaptiveAgent(min_worthwhile_block_ns=100 * US)

        class FakeCore:
            owner_vm_id = 0

        for _ in range(20):
            agent.observe_block(0, 10 * US)  # short blocks
        assert agent.on_core_idle(FakeCore(), "block") is False
        assert agent.block_lends_suppressed == 1

    def test_long_blocks_allow_lending(self):
        agent = AdaptiveAgent(min_worthwhile_block_ns=100 * US)

        class FakeCore:
            owner_vm_id = 0

        for _ in range(20):
            agent.observe_block(0, 500 * US)
        assert agent.on_core_idle(FakeCore(), "block") is True

    def test_unobserved_vm_defaults_to_lending(self):
        agent = AdaptiveAgent(min_worthwhile_block_ns=100 * US)

        class FakeCore:
            owner_vm_id = 7

        # No observations yet: typical block is unknown (infinite).
        assert agent.on_core_idle(FakeCore(), "block") is True

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveAgent(min_worthwhile_block_ns=-1)


class TestAdaptiveInSystem:
    def test_agent_selected_and_fed(self):
        sim = run_server_raw(adaptive_system(), FAST)
        assert sim.agent.name == "hardharvest-adaptive"
        # The engine fed blocking observations for blocking services.
        assert sim.agent._block_ewma  # populated
        # UrlShort (vm 7) never blocks; User (vm 2) does.
        assert 2 in sim.agent._block_ewma

    def test_adaptive_between_term_and_block(self):
        """With a high worthwhile-block threshold, the adaptive agent lends
        less than plain Block mode but still more than Term mode."""
        block = run_server(hardharvest_block(), FAST)
        adaptive = run_server(adaptive_system(), FAST)
        assert 0 < adaptive.counters["lends"] <= block.counters["lends"]

    def test_high_threshold_suppresses_block_lends(self):
        sim = run_server_raw(adaptive_system(), FAST)
        # Default threshold (50 µs) is below every service's typical block
        # (>= 100 µs), so nothing is suppressed...
        assert sim.agent.block_lends_suppressed == 0

        import repro.harvest.adaptive as adaptive_mod

        class Strict(adaptive_mod.AdaptiveAgent):
            def __init__(self):
                super().__init__(min_worthwhile_block_ns=10_000_000)

        orig = adaptive_mod.AdaptiveAgent
        adaptive_mod.AdaptiveAgent = Strict
        try:
            sim2 = run_server_raw(adaptive_system(), FAST)
        finally:
            adaptive_mod.AdaptiveAgent = orig
        assert sim2.agent.block_lends_suppressed > 0
        assert sim2.counters["lends"] < sim.counters["lends"]
