"""Tests for multi-server cluster runs (sequential and parallel)."""


from repro.config import SimulationConfig
from repro.core.experiment import run_cluster
from repro.core.presets import hardharvest_block, noharvest

FAST = SimulationConfig(
    horizon_ms=60, warmup_ms=10, accesses_per_segment=8, seed=17,
    servers_to_simulate=3,
)


def test_cluster_one_job_per_server():
    result = run_cluster(noharvest(), FAST)
    assert len(result.servers) == 3
    jobs = [s.batch_job for s in result.servers]
    assert jobs == ["BFS", "CC", "DC"]
    assert result.avg_p99_ms() > 0
    assert result.avg_busy_cores() > 0


def test_cluster_servers_differ_by_seed():
    result = run_cluster(noharvest(), FAST)
    p99s = [s.avg_p99_ms() for s in result.servers]
    assert len(set(p99s)) == 3  # per-server RNG streams differ


def test_parallel_matches_sequential():
    seq = run_cluster(hardharvest_block(), FAST, parallel=False)
    par = run_cluster(hardharvest_block(), FAST, parallel=True)
    for a, b in zip(seq.servers, par.servers):
        assert a.p99_ms == b.p99_ms
        assert a.avg_busy_cores == b.avg_busy_cores
        assert a.counters == b.counters


def test_throughput_by_job_mapping():
    result = run_cluster(noharvest(), FAST)
    thr = result.throughput_by_job()
    assert set(thr) == {"BFS", "CC", "DC"}
    assert all(v > 0 for v in thr.values())
