"""Engine fuzzing: random configurations must preserve the core invariants.

A light hypothesis harness over the full per-server engine: whatever the
load, fidelity, suite, or system, a run must terminate with every request
accounted for, consistent loan bookkeeping, and non-negative time.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.cluster.server import ServerSimulation
from repro.core.presets import all_systems

SYSTEM_NAMES = list(all_systems())


@given(
    system_name=st.sampled_from(SYSTEM_NAMES),
    seed=st.integers(0, 10_000),
    load_scale=st.floats(0.3, 2.5),
    accesses=st.integers(4, 16),
    suite=st.sampled_from(["socialnet", "hotel"]),
)
@settings(max_examples=8, deadline=None)
def test_random_configs_preserve_invariants(
    system_name, seed, load_scale, accesses, suite
):
    simcfg = SimulationConfig(
        horizon_ms=40,
        warmup_ms=5,
        accesses_per_segment=accesses,
        seed=seed,
        load_scale=load_scale,
        suite=suite,
    )
    sim = ServerSimulation(all_systems()[system_name], simcfg)
    sim.run()

    # Conservation: every generated request completed; queues drained.
    assert sim._completions == sim._target_completions
    for vm in sim.primary_vms:
        assert vm.queue.pending() == 0

    # Loan bookkeeping balances: a run may stop with reclaims in flight
    # (counted, not yet completed), so exclude those from "still loaned".
    lends = sim.counters.get("lends", 0)
    reclaims = sim.counters.get("reclaims", 0)
    still_loaned = sum(
        1 for c in sim.cores if c.on_loan and not c.reclaim_in_flight
    )
    assert lends == reclaims + still_loaned

    # Guest cores all returned; states sane.
    for core in sim.cores:
        assert core.guest_vm_id is None
        assert core.state in ("idle", "busy", "switching")

    # Time sane; utilization within physical bounds.
    assert 0 < sim.end_ns
    busy = sim.average_busy_cores()
    assert 0.0 <= busy <= len(sim.cores)

    # Latencies recorded and positive wherever requests were measured.
    for rec in sim.latency.values():
        if rec.count:
            assert rec.p50() > 0
