"""Fault-injected sweeps through the parallel runner and result cache.

The acceptance criteria of the fault subsystem's determinism contract:

* a fault-injected sweep with ``workers=2`` is bit-identical to the same
  sweep with ``workers=1`` (fault randomness lives in dedicated RNG
  streams, so process fan-out cannot reorder draws);
* rerunning an unchanged fault config is served >= 90% from cache, while
  changing any :class:`FaultSpec` parameter is a cache miss.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import SimulationConfig
from repro.core.export import server_result_to_dict
from repro.core.presets import hardharvest_block, noharvest
from repro.faults import FaultSchedule, FaultSpec, get_scenario
from repro.parallel import ResultCache, SweepPoint, canonical_json, run_sweep

FAST = SimulationConfig(horizon_ms=60, warmup_ms=10, accesses_per_segment=8, seed=17)


def _points():
    scenario = get_scenario("crash-storm", FAST.horizon_ms)
    cfg = replace(FAST, faults=scenario.schedule, client=scenario.client)
    return [
        SweepPoint(label="NoHarvest", system=noharvest(), sim=cfg),
        SweepPoint(label="HardHarvest-Block", system=hardharvest_block(), sim=cfg),
    ]


def _fingerprints(outcome):
    return {
        label: canonical_json(server_result_to_dict(r))
        for label, r in outcome.results.items()
    }


def test_fault_sweep_parallel_bit_identical():
    serial = run_sweep(_points(), workers=1)
    fanned = run_sweep(_points(), workers=2)
    assert _fingerprints(serial) == _fingerprints(fanned)


def test_fault_sweep_cache_hits_when_unchanged(tmp_path):
    cache = ResultCache(str(tmp_path))
    cold = run_sweep(_points(), workers=2, cache=cache)
    assert cold.computed == 2 and cold.from_cache == 0
    warm = run_sweep(_points(), workers=2, cache=cache)
    assert warm.from_cache == 2  # 100% >= the 90% criterion
    assert _fingerprints(cold) == _fingerprints(warm)


def test_changed_fault_spec_is_cache_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    run_sweep(_points(), workers=1, cache=cache)
    scenario = get_scenario("crash-storm", FAST.horizon_ms)
    longer = tuple(
        replace(ev, duration_ms=ev.duration_ms + 0.5)
        for ev in scenario.schedule.events
    )
    cfg = replace(FAST, faults=FaultSchedule(events=longer),
                  client=scenario.client)
    points = [SweepPoint(label="NoHarvest", system=noharvest(), sim=cfg)]
    outcome = run_sweep(points, workers=1, cache=cache)
    assert outcome.from_cache == 0 and outcome.computed == 1


def test_systems_degrade_differently_under_faults():
    """NoHarvest and HardHarvest-Block must produce *different but
    plausible* degradation profiles under the same fault timeline."""
    outcome = run_sweep(_points(), workers=2)
    profiles = {
        label: r.resilience for label, r in outcome.results.items()
    }
    for res in profiles.values():
        assert 0.0 < res["goodput"] <= 1.0
        assert res["retry_amplification"] >= 1.0
        assert 0.0 <= res["slo_violation_rate"] < 1.0
        assert res["completed"] + res["failed"] == res["offered"]
    assert profiles["NoHarvest"] != profiles["HardHarvest-Block"]
