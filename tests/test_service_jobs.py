"""Tests for the service layer's request parsing, identity contract,
job store, and JobManager state machine (no sockets involved)."""

import json

import pytest

import repro
from repro.config import SimulationConfig
from repro.service.jobs import JobManager, JobRecord, JobStore, QueueFullError
from repro.service.spec import (
    JobValidationError,
    job_content_id,
    parse_job_request,
    validate_simulation,
)

TINY_SIM = {"horizon_ms": 12.0, "warmup_ms": 2.0, "accesses_per_segment": 3}


def sweep_body(**overrides):
    body = {
        "kind": "sweep",
        "systems": "NoHarvest",
        "seeds": "0..1",
        "simulation": dict(TINY_SIM),
    }
    body.update(overrides)
    return body


def cluster_body(**overrides):
    body = {
        "kind": "cluster",
        "system": "HardHarvest-Block",
        "cluster": {"servers": 2, "requests": 800, "epochs": 2,
                    "routing": "p2c"},
        "simulation": dict(TINY_SIM),
    }
    body.update(overrides)
    return body


# ---------------------------------------------------------------------------
# Parsing and validation.
# ---------------------------------------------------------------------------
class TestParsing:
    def test_sweep_points_grid(self):
        request = parse_job_request(sweep_body(systems="NoHarvest,Harvest-Term"))
        points = request.points()
        assert [p.label for p in points] == [
            "NoHarvest/seed=0", "NoHarvest/seed=1",
            "Harvest-Term/seed=0", "Harvest-Term/seed=1",
        ]

    def test_body_must_be_object(self):
        with pytest.raises(JobValidationError):
            parse_job_request([1, 2])

    def test_unknown_kind_blames_kind(self):
        with pytest.raises(JobValidationError) as excinfo:
            parse_job_request({"kind": "banana"})
        assert excinfo.value.field == "kind"

    def test_unknown_system_blames_systems(self):
        with pytest.raises(JobValidationError) as excinfo:
            parse_job_request(sweep_body(systems="NoSuchSystem"))
        assert excinfo.value.field == "systems"

    def test_bad_seeds_blames_seeds(self):
        with pytest.raises(JobValidationError) as excinfo:
            parse_job_request(sweep_body(seeds="7..3"))
        assert excinfo.value.field == "seeds"

    def test_unknown_sim_field_named(self):
        body = sweep_body(simulation={**TINY_SIM, "horizn_ms": 10})
        with pytest.raises(JobValidationError) as excinfo:
            parse_job_request(body)
        assert excinfo.value.field == "horizn_ms"

    def test_negative_horizon_blames_horizon(self):
        body = sweep_body(simulation={"horizon_ms": -5})
        with pytest.raises(JobValidationError) as excinfo:
            parse_job_request(body)
        assert excinfo.value.field == "horizon_ms"
        assert "horizon_ms" in str(excinfo.value)

    def test_warmup_beyond_horizon_blames_warmup(self):
        body = sweep_body(simulation={"horizon_ms": 10, "warmup_ms": 10})
        with pytest.raises(JobValidationError) as excinfo:
            parse_job_request(body)
        assert excinfo.value.field == "warmup_ms"

    def test_workers_bounds(self):
        with pytest.raises(JobValidationError) as excinfo:
            parse_job_request(sweep_body(workers=0))
        assert excinfo.value.field == "workers"
        with pytest.raises(JobValidationError):
            parse_job_request(sweep_body(workers="four"))

    def test_warmup_defaults_like_the_cli(self):
        request = parse_job_request(
            sweep_body(simulation={"horizon_ms": 300.0})
        )
        assert request.sim.warmup_ms == pytest.approx(60.0)

    def test_cluster_unknown_routing(self):
        body = cluster_body()
        body["cluster"]["routing"] = "banana"
        with pytest.raises(JobValidationError) as excinfo:
            parse_job_request(body)
        assert excinfo.value.field == "routing"

    def test_cluster_unknown_fault_plan(self):
        with pytest.raises(JobValidationError) as excinfo:
            parse_job_request(cluster_body(fault_plan="meteor-strike"))
        assert excinfo.value.field == "fault_plan"

    def test_cluster_core_budget_checked_at_submit(self):
        body = cluster_body()
        body["cluster"]["harvest_max_cores"] = 99
        with pytest.raises(JobValidationError) as excinfo:
            parse_job_request(body)
        assert excinfo.value.field == "harvest_max_cores"

    def test_cluster_sim_inherits_server_count(self):
        request = parse_job_request(cluster_body())
        assert request.sim.servers_to_simulate == 2

    def test_validate_simulation_accepts_defaults(self):
        validate_simulation(SimulationConfig())

    def test_validate_simulation_flags_bad_seed(self):
        with pytest.raises(JobValidationError) as excinfo:
            validate_simulation(SimulationConfig(seed=-1))
        assert excinfo.value.field == "seed"


# ---------------------------------------------------------------------------
# Identity: the dedupe and cache-key contract.
# ---------------------------------------------------------------------------
class TestIdentity:
    def test_workers_never_split_job_ids(self):
        base = parse_job_request(sweep_body(workers=1))
        other = parse_job_request(sweep_body(workers=4))
        assert job_content_id(base) == job_content_id(other)

    def test_int_vs_float_fields_hash_equal(self):
        ints = parse_job_request(
            sweep_body(simulation={"horizon_ms": 12, "warmup_ms": 2,
                                   "accesses_per_segment": 3})
        )
        floats = parse_job_request(sweep_body())
        assert job_content_id(ints) == job_content_id(floats)

    def test_different_seeds_different_ids(self):
        a = parse_job_request(sweep_body(seeds="0"))
        b = parse_job_request(sweep_body(seeds="1"))
        assert job_content_id(a) != job_content_id(b)

    def test_sweep_vs_cluster_never_collide(self):
        assert job_content_id(
            parse_job_request(sweep_body())
        ) != job_content_id(parse_job_request(cluster_body()))

    def test_request_dict_roundtrip_is_identity_stable(self):
        for body in (sweep_body(), cluster_body(),
                     cluster_body(fault_plan="crash-storm")):
            request = parse_job_request(body)
            rebuilt = parse_job_request(request.to_request_dict())
            assert job_content_id(rebuilt) == job_content_id(request)

    def test_id_salted_by_package_version(self):
        request = parse_job_request(sweep_body())
        from repro.parallel.cache import ResultCache

        other = ResultCache(version="0.0.0-test")
        assert job_content_id(request) != other.key(request.identity())


# ---------------------------------------------------------------------------
# The on-disk store.
# ---------------------------------------------------------------------------
class TestJobStore:
    def test_record_roundtrip(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = JobRecord(job_id="abc", kind="sweep",
                           request=sweep_body(), submitted_s=1.0)
        store.save(record)
        loaded = store.load("abc")
        assert loaded == record

    def test_corrupt_record_is_none(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.save(JobRecord(job_id="abc", kind="sweep", request={}))
        (tmp_path / "jobs" / "abc.json").write_text("{ torn")
        assert store.load("abc") is None

    def test_load_all_orders_by_submission(self, tmp_path):
        store = JobStore(str(tmp_path))
        for i, job_id in enumerate(["zzz", "aaa", "mmm"]):
            store.save(JobRecord(job_id=job_id, kind="sweep", request={},
                                 submitted_s=float(i)))
        assert [r.job_id for r in store.load_all()] == ["zzz", "aaa", "mmm"]

    def test_result_files_not_mistaken_for_records(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.save(JobRecord(job_id="abc", kind="sweep", request={}))
        store.write_result("abc", {"digest": "d"})
        assert len(store.load_all()) == 1
        assert store.read_result("abc") == {"digest": "d"}


# ---------------------------------------------------------------------------
# JobManager state machine.
# ---------------------------------------------------------------------------
class TestJobManager:
    def make(self, tmp_path, max_queue=4):
        return JobManager(JobStore(str(tmp_path)), max_queue=max_queue)

    def test_submit_dedupes(self, tmp_path):
        manager = self.make(tmp_path)
        first, created_a = manager.submit(sweep_body())
        second, created_b = manager.submit(sweep_body(workers=4))
        assert created_a and not created_b
        assert first.job_id == second.job_id
        assert manager.deduped == 1
        assert manager.queue_depth() == 1

    def test_admission_control(self, tmp_path):
        manager = self.make(tmp_path, max_queue=1)
        manager.submit(sweep_body(seeds="0"))
        with pytest.raises(QueueFullError):
            manager.submit(sweep_body(seeds="1"))
        assert manager.rejected == 1

    def test_claim_finish_cycle_persists(self, tmp_path):
        manager = self.make(tmp_path)
        record, _ = manager.submit(sweep_body())
        manager.pop_pending()
        claimed, request = manager.claim(record.job_id)
        assert claimed.state == "running"
        assert request.kind == "sweep"
        manager.finish(record.job_id, "digest123")
        on_disk = manager.store.load(record.job_id)
        assert on_disk.state == "done"
        assert on_disk.digest == "digest123"
        # A done job cannot be claimed again.
        assert manager.claim(record.job_id) is None

    def test_failed_job_resubmission_requeues(self, tmp_path):
        manager = self.make(tmp_path)
        record, _ = manager.submit(sweep_body())
        manager.pop_pending()
        manager.claim(record.job_id)
        manager.fail(record.job_id, "boom")
        assert manager.get(record.job_id).state == "failed"
        again, created = manager.submit(sweep_body())
        assert created and again.job_id == record.job_id
        assert again.state == "queued" and again.error is None

    def test_recover_requeues_interrupted_jobs(self, tmp_path):
        manager = self.make(tmp_path)
        queued, _ = manager.submit(sweep_body(seeds="0"))
        running, _ = manager.submit(sweep_body(seeds="1"))
        manager.pop_pending(), manager.pop_pending()
        manager.claim(queued.job_id)
        manager.finish(queued.job_id, "d")
        manager.claim(running.job_id)  # dies mid-job here

        fresh = self.make(tmp_path)
        to_run = fresh.recover()
        assert to_run == [running.job_id]
        assert fresh.get(running.job_id).state == "queued"
        assert fresh.get(queued.job_id).state == "done"
        assert fresh.resumed == 1

    def test_requeue_unfinished_marks_running_queued(self, tmp_path):
        manager = self.make(tmp_path)
        record, _ = manager.submit(sweep_body())
        manager.pop_pending()
        manager.claim(record.job_id)
        assert manager.requeue_unfinished() == [record.job_id]
        assert manager.store.load(record.job_id).state == "queued"

    def test_counts_by_state(self, tmp_path):
        manager = self.make(tmp_path)
        record, _ = manager.submit(sweep_body())
        counts = manager.counts()
        assert counts["queued"] == 1
        assert counts["done"] == 0


def test_job_record_rejects_future_fields_gracefully():
    """from_dict drops unknown keys so old services can read newer files."""
    record = JobRecord.from_dict(
        {"job_id": "x", "kind": "sweep", "request": {},
         "state": "queued", "workers": 1, "submitted_s": 0.0,
         "a_future_field": True}
    )
    assert record.job_id == "x"


def test_version_salt_matches_cache_contract(tmp_path):
    """Job ids roll with the package version, exactly like cache keys."""
    request = parse_job_request(
        {"kind": "sweep", "systems": "NoHarvest", "seeds": "0",
         "simulation": dict(TINY_SIM)}
    )
    from repro.parallel.cache import ResultCache

    expected = ResultCache().key(request.identity())
    assert job_content_id(request) == expected
    material = (
        json.dumps(request.identity(), sort_keys=True,
                   separators=(",", ":"), allow_nan=True)
        + "\n" + repro.__version__
    )
    import hashlib

    assert expected == hashlib.sha256(material.encode()).hexdigest()
