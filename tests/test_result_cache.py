"""Tests for the content-addressed result cache (:mod:`repro.parallel.cache`).

Covers the cache-key contract (stability, version sensitivity), hit/miss/
invalidation counters, corruption fallback, eviction on version bump, and
atomicity under concurrent writers.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.parallel.cache import V2_MAGIC, CacheStats, ResultCache, canonical_json

PAYLOAD = {"system": {"name": "X"}, "simulation": {"seed": 3}, "server_index": 0}
RESULT = {"p99": 1.25, "counters": {"lends": 4}}


def test_canonical_json_is_order_insensitive():
    a = canonical_json({"b": 1, "a": {"y": 2, "x": 3}})
    b = canonical_json({"a": {"x": 3, "y": 2}, "b": 1})
    assert a == b


def test_key_stable_and_config_sensitive(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    key = cache.key(PAYLOAD)
    assert key == cache.key(dict(PAYLOAD))  # stable across calls/copies
    assert key != cache.key({**PAYLOAD, "simulation": {"seed": 4}})


def test_key_includes_package_version(tmp_path):
    old = ResultCache(root=str(tmp_path), version="1.0.0")
    new = ResultCache(root=str(tmp_path), version="1.0.1")
    assert old.key(PAYLOAD) != new.key(PAYLOAD)


def test_miss_then_hit_with_counters(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    key = cache.key(PAYLOAD)
    assert cache.get(key) is None
    cache.put(key, PAYLOAD, RESULT)
    # put() primes the in-process LRU, so this hit never touches disk.
    assert cache.get(key) == RESULT
    assert cache.stats == CacheStats(
        hits=1, misses=1, stores=1, invalidations=0, memory_hits=1
    )
    assert cache.stats.hit_rate() == 0.5
    assert len(cache) == 1
    # A fresh instance (cold memory layer) hits the disk entry.
    fresh = ResultCache(root=str(tmp_path))
    assert fresh.get(key) == RESULT
    assert fresh.stats == CacheStats(hits=1, memory_hits=0)


def test_version_bump_misses_and_prune_evicts(tmp_path):
    old = ResultCache(root=str(tmp_path), version="1.0.0")
    old.put(old.key(PAYLOAD), PAYLOAD, RESULT)
    new = ResultCache(root=str(tmp_path), version="2.0.0")
    # Different version -> different key -> clean miss, stale entry unused.
    assert new.get(new.key(PAYLOAD)) is None
    assert new.stats.misses == 1
    assert len(new) == 1
    assert new.prune_stale() == 1  # the 1.0.0 entry is evicted
    assert new.stats.invalidations == 1
    assert len(new) == 0
    # Entries under the current version survive pruning.
    new.put(new.key(PAYLOAD), PAYLOAD, RESULT)
    assert new.prune_stale() == 0
    assert new.get(new.key(PAYLOAD)) == RESULT


@pytest.mark.parametrize(
    "garbage", ["", "{not json", '{"version": "1.0.0"}', "repz2\nnot-zlib"]
)
def test_corrupted_entry_falls_back_to_recompute(tmp_path, garbage):
    writer = ResultCache(root=str(tmp_path))
    key = writer.key(PAYLOAD)
    writer.put(key, PAYLOAD, RESULT)
    path = writer._path(key)
    with open(path, "w") as fh:
        fh.write(garbage)
    # Fresh instance: corruption is discovered by a reader whose memory
    # layer has not been primed by the original put.
    cache = ResultCache(root=str(tmp_path))
    assert cache.get(key) is None  # corrupt -> miss, not a crash
    assert cache.stats.invalidations == 1
    assert not os.path.exists(path)  # corrupt file removed
    cache.put(key, PAYLOAD, RESULT)  # recompute path can overwrite
    assert cache.get(key) == RESULT


def test_entry_is_self_describing(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    key = cache.key(PAYLOAD)
    cache.put(key, PAYLOAD, RESULT)
    with open(cache._path(key), "rb") as fh:
        assert fh.read().startswith(V2_MAGIC)  # marked, compressed entry
    entry = cache.read_entry(key)
    assert entry["version"] == cache.version
    assert entry["payload"] == PAYLOAD
    assert entry["result"] == RESULT
    assert cache.read_entry("0" * 64) is None


def test_concurrent_writers_never_leave_a_torn_file(tmp_path):
    """Racing writers on the same key: every read sees a complete entry."""
    cache = ResultCache(root=str(tmp_path))
    key = cache.key(PAYLOAD)
    cache.put(key, PAYLOAD, RESULT)
    errors = []
    stop = threading.Event()

    def writer():
        w = ResultCache(root=str(tmp_path))
        for _ in range(50):
            w.put(key, PAYLOAD, RESULT)

    def reader():
        r = ResultCache(root=str(tmp_path))
        while not stop.is_set():
            got = r.get(key)
            if got != RESULT:
                errors.append(got)
        if r.stats.invalidations:
            errors.append(f"{r.stats.invalidations} invalidations during race")

    threads = [threading.Thread(target=writer) for _ in range(4)]
    watcher = threading.Thread(target=reader)
    watcher.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    watcher.join()
    assert not errors
    assert cache.get(key) == RESULT
    # No stray temp files left behind.
    shard = os.path.dirname(cache._path(key))
    assert [n for n in os.listdir(shard) if n.endswith(".tmp")] == []
