"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_storage_command(capsys):
    assert main(["storage"]) == 0
    out = capsys.readouterr().out
    assert "controller storage" in out
    assert "18.95" in out


def test_run_command_fast(capsys):
    rc = main(["run", "--system", "NoHarvest", "--horizon-ms", "60",
               "--accesses", "8", "--seed", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "avg P99 latency" in out
    assert "busy cores" in out


def test_cluster_command_fast(capsys):
    rc = main(["cluster", "--system", "NoHarvest", "--servers", "2",
               "--horizon-ms", "60", "--accesses", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "across 2 servers" in out
    assert "cluster avg P99" in out


def test_unknown_system_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--system", "NotASystem"])


def test_parser_defaults():
    args = build_parser().parse_args(["run"])
    assert args.system == "HardHarvest-Block"
    assert args.horizon_ms == 300.0
