"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_storage_command(capsys):
    assert main(["storage"]) == 0
    out = capsys.readouterr().out
    assert "controller storage" in out
    assert "18.95" in out


def test_run_command_fast(capsys):
    rc = main(["run", "--system", "NoHarvest", "--horizon-ms", "60",
               "--accesses", "8", "--seed", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "avg P99 latency" in out
    assert "busy cores" in out


def test_cluster_command_fast(capsys):
    rc = main(["cluster", "--system", "NoHarvest", "--servers", "2",
               "--horizon-ms", "60", "--accesses", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "across 2 servers" in out
    assert "cluster avg P99" in out


def test_run_command_missing_config_exits_2(capsys, tmp_path):
    missing = tmp_path / "nope.json"
    rc = main(["run", "--config", str(missing)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "cannot read --config" in err


def test_run_command_corrupt_config_exits_2(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{ this is not json")
    rc = main(["run", "--config", str(bad)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "not a valid experiment config" in err


def test_faults_list(capsys):
    rc = main(["faults", "--list"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "crash-storm" in out
    assert "brownout" in out


def test_faults_unknown_scenario_exits_2(capsys):
    rc = main(["faults", "--scenario", "meteor-strike"])
    assert rc == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_faults_unknown_system_exits_2(capsys):
    rc = main(["faults", "--systems", "NotASystem"])
    assert rc == 2
    assert "unknown system" in capsys.readouterr().err


def test_faults_command_fast(capsys, tmp_path):
    out_json = tmp_path / "faults.json"
    rc = main(["faults", "--scenario", "crash-storm", "--horizon-ms", "60",
               "--accesses", "8", "--systems", "NoHarvest", "--no-cache",
               "--json", str(out_json)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Degradation under faults" in out
    assert "goodput" in out
    assert "retry_amp" in out
    assert out_json.exists()


def test_trace_command_deterministic(capsys, tmp_path):
    argv = ["trace", "--system", "NoHarvest", "--horizon-ms", "40",
            "--accesses", "6", "--probe-interval-us", "100"]
    rc = main(argv + ["--out", str(tmp_path / "a")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Critical path" in out
    assert "span event(s)" in out
    assert "probe sample(s)" in out

    rc = main(argv + ["--out", str(tmp_path / "b")])
    assert rc == 0
    capsys.readouterr()
    for name in ("trace.json", "timeseries.csv", "critical_path.txt"):
        first = (tmp_path / "a" / name).read_bytes()
        second = (tmp_path / "b" / name).read_bytes()
        assert first, name
        assert first == second, f"{name} not byte-identical across runs"


def test_unknown_system_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--system", "NotASystem"])


def test_parser_defaults():
    args = build_parser().parse_args(["run"])
    assert args.system == "HardHarvest-Block"
    assert args.horizon_ms == 300.0


def test_run_config_invalid_field_named(capsys, tmp_path):
    """A --config file with a bad field value exits 2 naming the field."""
    import json

    cfg_path = tmp_path / "cfg.json"
    rc = main(["run", "--system", "NoHarvest", "--horizon-ms", "10",
               "--accesses", "2", "--dump-config", str(cfg_path)])
    assert rc == 0
    capsys.readouterr()

    def poison(obj):
        if isinstance(obj, dict):
            if obj.get("__type__") == "SimulationConfig":
                obj["horizon_ms"] = -5.0
            for value in obj.values():
                poison(value)
        elif isinstance(obj, list):
            for value in obj:
                poison(value)

    cfg = json.loads(cfg_path.read_text())
    poison(cfg)
    cfg_path.write_text(json.dumps(cfg))
    rc = main(["run", "--config", str(cfg_path)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "invalid field 'horizon_ms'" in err
    assert "must be positive" in err


def test_sweep_stats_json_carries_digest(capsys, tmp_path):
    import json

    stats_path = tmp_path / "stats.json"
    argv = ["sweep", "--systems", "NoHarvest", "--seeds", "0",
            "--horizon-ms", "12", "--accesses", "3", "--no-cache",
            "--stats-json", str(stats_path)]
    assert main(argv) == 0
    capsys.readouterr()
    first = json.loads(stats_path.read_text())
    assert len(first["digest"]) == 64

    assert main(argv) == 0
    capsys.readouterr()
    second = json.loads(stats_path.read_text())
    assert second["digest"] == first["digest"], "sweep digest not stable"


def test_cache_command_stats_and_prune(capsys, tmp_path):
    import json

    cache_dir = tmp_path / "cache"
    # Populate the cache with one real entry.
    rc = main(["sweep", "--systems", "NoHarvest", "--seeds", "0",
               "--horizon-ms", "12", "--accesses", "3",
               "--cache-dir", str(cache_dir)])
    assert rc == 0
    capsys.readouterr()

    # Plant a stale entry (wrong version) by hand.
    stale_dir = cache_dir / "ff"
    stale_dir.mkdir(parents=True, exist_ok=True)
    (stale_dir / ("f" * 64 + ".json")).write_text(
        json.dumps({"version": "0.0.1", "payload": {}, "result": {}})
    )

    stats_path = tmp_path / "cache_stats.json"
    rc = main(["cache", "--cache-dir", str(cache_dir),
               "--stats-json", str(stats_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "entries" in out and "stale" in out
    stats = json.loads(stats_path.read_text())
    assert stats["entries"] == 2
    assert stats["current"] == 1
    assert stats["stale"] == 1
    assert stats["by_version"]["0.0.1"] == 1

    rc = main(["cache", "--cache-dir", str(cache_dir), "--prune-stale",
               "--stats-json", str(stats_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "pruned 1 stale entry" in out
    stats = json.loads(stats_path.read_text())
    assert stats["entries"] == 1
    assert stats["stale"] == 0
    assert stats["pruned"] == 1


def test_cache_prune_never_touches_job_records(capsys, tmp_path):
    """The service job store shares the cache root; pruning must skip it."""
    import json

    cache_dir = tmp_path / "cache"
    jobs_dir = cache_dir / "jobs"
    jobs_dir.mkdir(parents=True)
    (jobs_dir / "abc.json").write_text(json.dumps(
        {"job_id": "abc", "kind": "sweep", "request": {},
         "state": "done", "workers": 1, "submitted_s": 0.0}
    ))
    rc = main(["cache", "--cache-dir", str(cache_dir), "--prune-stale"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "pruned 0 stale" in out
    assert "1 service job record(s)" in out
    assert (jobs_dir / "abc.json").exists()


def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve"])
    assert args.port == 8023
    assert args.service_workers == 2
    assert args.grace_s == 30.0
    args = build_parser().parse_args(["cache", "--prune-stale"])
    assert args.prune_stale is True
