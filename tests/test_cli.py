"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_storage_command(capsys):
    assert main(["storage"]) == 0
    out = capsys.readouterr().out
    assert "controller storage" in out
    assert "18.95" in out


def test_run_command_fast(capsys):
    rc = main(["run", "--system", "NoHarvest", "--horizon-ms", "60",
               "--accesses", "8", "--seed", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "avg P99 latency" in out
    assert "busy cores" in out


def test_cluster_command_fast(capsys):
    rc = main(["cluster", "--system", "NoHarvest", "--servers", "2",
               "--horizon-ms", "60", "--accesses", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "across 2 servers" in out
    assert "cluster avg P99" in out


def test_run_command_missing_config_exits_2(capsys, tmp_path):
    missing = tmp_path / "nope.json"
    rc = main(["run", "--config", str(missing)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "cannot read --config" in err


def test_run_command_corrupt_config_exits_2(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{ this is not json")
    rc = main(["run", "--config", str(bad)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "not a valid experiment config" in err


def test_faults_list(capsys):
    rc = main(["faults", "--list"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "crash-storm" in out
    assert "brownout" in out


def test_faults_unknown_scenario_exits_2(capsys):
    rc = main(["faults", "--scenario", "meteor-strike"])
    assert rc == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_faults_unknown_system_exits_2(capsys):
    rc = main(["faults", "--systems", "NotASystem"])
    assert rc == 2
    assert "unknown system" in capsys.readouterr().err


def test_faults_command_fast(capsys, tmp_path):
    out_json = tmp_path / "faults.json"
    rc = main(["faults", "--scenario", "crash-storm", "--horizon-ms", "60",
               "--accesses", "8", "--systems", "NoHarvest", "--no-cache",
               "--json", str(out_json)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Degradation under faults" in out
    assert "goodput" in out
    assert "retry_amp" in out
    assert out_json.exists()


def test_trace_command_deterministic(capsys, tmp_path):
    argv = ["trace", "--system", "NoHarvest", "--horizon-ms", "40",
            "--accesses", "6", "--probe-interval-us", "100"]
    rc = main(argv + ["--out", str(tmp_path / "a")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Critical path" in out
    assert "span event(s)" in out
    assert "probe sample(s)" in out

    rc = main(argv + ["--out", str(tmp_path / "b")])
    assert rc == 0
    capsys.readouterr()
    for name in ("trace.json", "timeseries.csv", "critical_path.txt"):
        first = (tmp_path / "a" / name).read_bytes()
        second = (tmp_path / "b" / name).read_bytes()
        assert first, name
        assert first == second, f"{name} not byte-identical across runs"


def test_unknown_system_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--system", "NotASystem"])


def test_parser_defaults():
    args = build_parser().parse_args(["run"])
    assert args.system == "HardHarvest-Block"
    assert args.horizon_ms == 300.0
