"""Tests for offline Belady replay and policy replays."""

import numpy as np
import pytest

from repro.analysis.belady import belady_hit_rate, merge_traces, replay_policy
from repro.mem.replacement import HardHarvestPolicy, LruPolicy, RripPolicy


def trace_of(tags, set_index=0, shared=False):
    return [(set_index, t, shared) for t in tags]


class TestBelady:
    def test_simple_reuse(self):
        # 2 ways; A B A B always hits after warmup.
        trace = trace_of([1, 2, 1, 2, 1, 2])
        assert belady_hit_rate(trace, 2) == pytest.approx(4 / 6)

    def test_optimal_beats_lru_on_adversarial_pattern(self):
        # Cyclic A B C with 2 ways: LRU gets 0 hits, Belady keeps one line.
        trace = trace_of([1, 2, 3] * 20)
        lru = replay_policy(trace, 2, LruPolicy())
        opt = belady_hit_rate(trace, 2)
        assert lru == 0.0
        assert opt > 0.4

    def test_belady_upper_bounds_all_policies(self):
        rng = np.random.default_rng(0)
        tags = (rng.random(3000) ** 2 * 60).astype(int)
        trace = [(int(t) % 4, int(t), bool(t % 3 == 0)) for t in tags]
        opt = belady_hit_rate(trace, 4)
        for policy in (LruPolicy(), RripPolicy(), HardHarvestPolicy(0b0011, 0.75)):
            assert replay_policy(trace, 4, policy) <= opt + 1e-9

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            belady_hit_rate([], 2)
        with pytest.raises(ValueError):
            replay_policy([], 2, LruPolicy())

    def test_single_way(self):
        trace = trace_of([1, 1, 2, 2, 1])
        assert belady_hit_rate(trace, 1) == pytest.approx(2 / 5)


class TestMergeTraces:
    def test_sets_renumbered_per_core(self):
        t1 = [(0, 5, False)]
        t2 = [(0, 5, False)]
        merged = merge_traces([t1, t2])
        assert merged[0][0] != merged[1][0]
        assert merged[0][1] == merged[1][1] == 5

    def test_replay_on_merged_isolates_cores(self):
        # Same access stream on two cores must not interfere.
        t = trace_of([1, 2, 1, 2])
        single = replay_policy(t, 2, LruPolicy())
        merged = merge_traces([t, t])
        double = replay_policy(merged, 2, LruPolicy())
        assert double == pytest.approx(single)
