"""Tests for the cluster-scale resilience layer.

Contracts under test:

* fault-plan runs are **bit-identical at any worker count** and their
  digests change when the plan changes;
* nominal (no-fault-plan) runs keep **byte-identical digests** to the
  goldens captured before the resilience layer existed;
* health feedback excludes crashed servers from routing and re-admits
  them after the cool-down;
* checkpoints resume bit-identically from every kill boundary, and
  truncated/corrupt/version-mismatched checkpoint files downgrade to a
  (correct) colder run with a warning — never a wrong-answer resume;
* the hardened executor retries per point with backoff, salvages
  siblings, quarantines hopeless points only when asked, and rebuilds a
  broken pool.
"""

import dataclasses
import json
import os

import numpy as np
import pytest

import repro
from repro.__main__ import main
from repro.cluster_scale import (
    CheckpointStore,
    ClusterFaultPlan,
    ClusterFaultSpec,
    ClusterScaleConfig,
    HealthTracker,
    RoutingPolicy,
    aggregate_resilience,
    cluster_plan_names,
    cluster_run_key,
    get_cluster_plan,
    route_epoch,
    routing_rng,
    run_cluster_scale,
    service_mix,
)
from repro.config import SimulationConfig
from repro.core.presets import hardharvest_block, noharvest
from repro.faults.spec import ClientPolicy, FaultKind
from repro.workloads.batch import BATCH_JOBS
from repro.workloads.suites import get_suite

FAST = SimulationConfig(accesses_per_segment=2, seed=7)

#: Small but non-degenerate: every epoch has a crash, routing is load-aware,
#: and epochs are long enough that starved servers still complete requests.
STORM = ClusterScaleConfig(
    servers=3, requests=1800, epochs=3, epoch_ms=25.0, warmup_ms=4.0,
    routing=RoutingPolicy.POWER_OF_TWO,
    fault_plan=get_cluster_plan("crash-storm", 3, 3),
)


def _mix():
    system = hardharvest_block()
    profiles = get_suite(FAST.suite)[: system.cluster.primary_vms_per_server]
    return service_mix(profiles, system.cluster)


# ---------------------------------------------------------------------------
# ClusterFaultSpec / ClusterFaultPlan
# ---------------------------------------------------------------------------
def test_fault_spec_validation():
    with pytest.raises(ValueError, match="at least one server"):
        ClusterFaultSpec(kind=FaultKind.SERVER_CRASH, epoch=0, servers=())
    with pytest.raises(ValueError, match="duplicate"):
        ClusterFaultSpec(kind=FaultKind.SERVER_CRASH, epoch=0, servers=(1, 1))
    with pytest.raises(ValueError, match="fit inside the epoch"):
        ClusterFaultSpec(kind=FaultKind.SERVER_CRASH, epoch=0, servers=(0,),
                         start_frac=0.8, duration_frac=0.5)
    with pytest.raises(ValueError, match="epoch"):
        ClusterFaultSpec(kind=FaultKind.SERVER_CRASH, epoch=-1, servers=(0,))


def test_fault_spec_expands_to_epoch_window():
    spec = ClusterFaultSpec(
        kind=FaultKind.CORE_SLOWDOWN, epoch=2, servers=(0, 2),
        start_frac=0.25, duration_frac=0.5, magnitude=3.0,
    )
    fault = spec.expand(epoch_ms=40.0)
    assert fault.start_ms == pytest.approx(10.0)
    assert fault.duration_ms == pytest.approx(20.0)
    assert fault.magnitude == 3.0


def test_plan_schedule_for_targets_epoch_and_server():
    plan = ClusterFaultPlan(events=(
        ClusterFaultSpec(kind=FaultKind.SERVER_CRASH, epoch=1, servers=(0,)),
        ClusterFaultSpec(kind=FaultKind.CORE_STALL, epoch=1, servers=(0, 1),
                         magnitude=1.0),
    ))
    assert plan.schedule_for(0, 0, 25.0) is None
    assert plan.schedule_for(1, 2, 25.0) is None
    both = plan.schedule_for(1, 0, 25.0)
    assert [ev.kind for ev in both.events] == [
        FaultKind.SERVER_CRASH, FaultKind.CORE_STALL,
    ]
    assert len(plan.schedule_for(1, 1, 25.0).events) == 1


def test_plan_roundtrips_through_dict():
    plan = get_cluster_plan("crash-storm", 4, 3)
    again = ClusterFaultPlan.from_dict(plan.to_dict())
    assert again == plan
    bare = ClusterFaultPlan()
    assert ClusterFaultPlan.from_dict(bare.to_dict()) == bare


def test_canned_plans_cover_all_shapes():
    assert cluster_plan_names() == sorted(cluster_plan_names())
    for name in cluster_plan_names():
        plan = get_cluster_plan(name, servers=5, epochs=4)
        assert plan.events, name
        # Every canned plan must validate inside a matching config.
        ClusterScaleConfig(servers=5, epochs=4, fault_plan=plan)
    with pytest.raises(KeyError, match="unknown cluster fault plan"):
        get_cluster_plan("nope", 2, 2)


def test_config_rejects_out_of_range_plan_targets():
    crash = ClusterFaultSpec(kind=FaultKind.SERVER_CRASH, epoch=3, servers=(0,))
    with pytest.raises(ValueError, match="only 2 epoch"):
        ClusterScaleConfig(servers=2, epochs=2,
                           fault_plan=ClusterFaultPlan(events=(crash,)))
    far = ClusterFaultSpec(kind=FaultKind.SERVER_CRASH, epoch=0, servers=(7,))
    with pytest.raises(ValueError, match="only 2 server"):
        ClusterScaleConfig(servers=2, epochs=2,
                           fault_plan=ClusterFaultPlan(events=(far,)))


# ---------------------------------------------------------------------------
# Health feedback
# ---------------------------------------------------------------------------
def test_health_tracker_excludes_and_readmits():
    tracker = HealthTracker(servers=3, cooldown_epochs=2)
    assert tracker.eligible() == [True, True, True]
    record = tracker.barrier([True, False, False])
    assert record == {"crashed": [0], "excluded": [], "cooldown": [2, 0, 0]}
    assert tracker.eligible() == [False, True, True]
    record = tracker.barrier([False, False, False])
    assert record["excluded"] == [0]
    assert tracker.eligible() == [False, True, True]  # still cooling
    record = tracker.barrier([False, False, False])
    assert tracker.eligible() == [True, True, True]  # re-admitted


def test_health_tracker_recrash_restarts_cooldown():
    tracker = HealthTracker(servers=2, cooldown_epochs=1)
    tracker.barrier([True, False])
    tracker.barrier([True, False])  # crashes again while cooling
    assert tracker.eligible() == [False, True]


def test_health_tracker_all_excluded_falls_back_to_everyone():
    tracker = HealthTracker(servers=2, cooldown_epochs=3)
    tracker.barrier([True, True])
    assert tracker.eligible() == [True, True]
    assert tracker.excluded() == []


# ---------------------------------------------------------------------------
# Eligibility-aware routing
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("policy", list(RoutingPolicy))
def test_all_eligible_mask_is_draw_identical_to_no_mask(policy):
    mix = _mix()
    carry = np.zeros(4)
    a = route_epoch(policy, routing_rng(3, 1), 4, 500, mix, carry)
    b = route_epoch(policy, routing_rng(3, 1), 4, 500, mix, carry,
                    eligible=[True] * 4)
    assert a.to_dict() == b.to_dict()


@pytest.mark.parametrize("policy", list(RoutingPolicy))
def test_excluded_servers_receive_no_requests(policy):
    mix = _mix()
    routing = route_epoch(
        policy, routing_rng(0, 2), 4, 400, mix, np.zeros(4),
        eligible=[True, False, True, False],
    )
    assert routing.counts[1] == 0 and routing.counts[3] == 0
    assert int(routing.counts.sum()) == 400
    assert routing.to_dict()["excluded"] == [1, 3]


def test_all_excluded_mask_routes_everywhere():
    mix = _mix()
    routing = route_epoch(
        RoutingPolicy.ROUND_ROBIN, routing_rng(0, 0), 3, 300, mix,
        np.zeros(3), eligible=[False, False, False],
    )
    assert list(routing.counts) == [100, 100, 100]
    assert "excluded" not in routing.to_dict()


# ---------------------------------------------------------------------------
# Degradation aggregation
# ---------------------------------------------------------------------------
class _Stub:
    def __init__(self, resilience):
        self.resilience = resilience


def test_aggregate_resilience_sums_counters_and_recomputes_rates():
    servers = [
        _Stub({"offered": 100, "completed": 90, "completed_in_slo": 80,
               "failed": 10, "attempts": 120, "retries": 20, "hedges": 0,
               "shed": 0, "timeouts": 5, "recovery_ms_max": 12.0}),
        _Stub({"offered": 100, "completed": 100, "completed_in_slo": 100,
               "failed": 0, "attempts": 100, "retries": 0, "hedges": 0,
               "shed": 0, "timeouts": 0, "recovery_ms_max": 30.0}),
    ]
    agg = aggregate_resilience(servers)
    assert agg["offered"] == 200
    assert agg["goodput"] == pytest.approx(180 / 200)
    assert agg["retry_amplification"] == pytest.approx(220 / 200)
    assert agg["slo_violation_rate"] == pytest.approx(1 - 180 / 200)
    assert agg["recovery_ms_max"] == 30.0


def test_aggregate_resilience_handles_injector_only_summaries():
    # The injector-only path has no SLO/attempt accounting; completed
    # stands in for both so rates stay meaningful.
    agg = aggregate_resilience(
        [_Stub({"offered": 50, "completed": 40, "failed": 10, "goodput": 0.8})]
    )
    assert agg["goodput"] == pytest.approx(0.8)
    assert agg["retry_amplification"] == pytest.approx(0.8)


def test_aggregate_resilience_empty_without_fault_data():
    assert aggregate_resilience([_Stub({}), _Stub(None)]) == {}


# ---------------------------------------------------------------------------
# Fault-plan runs: determinism, health wiring, digest sensitivity
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def storm_run():
    return run_cluster_scale(hardharvest_block(), FAST, STORM, workers=1)


def test_fault_plan_run_bit_identical_across_workers(storm_run):
    parallel = run_cluster_scale(hardharvest_block(), FAST, STORM, workers=3)
    assert parallel.digest() == storm_run.digest()


def test_fault_plan_run_carries_health_and_curve(storm_run):
    assert storm_run.fault_plan == STORM.fault_plan.to_dict()
    # crash-storm crashes a rotating server every epoch; the next epoch's
    # routing must exclude it and the health record must say so.
    assert storm_run.epochs[0].health["crashed"] == [0]
    assert storm_run.epochs[1].health["excluded"] == [0]
    assert storm_run.epochs[1].routing["excluded"] == [0]
    assert storm_run.epochs[1].cluster.servers[0].counters[
        "requests_arrived"] < min(
        s.counters["requests_arrived"]
        for s in storm_run.epochs[1].cluster.servers[1:]
    )
    curve = storm_run.resilience_curve()
    assert [c["epoch"] for c in curve] == [0, 1, 2]
    for entry in curve:
        assert 0.0 < entry["goodput"] <= 1.0
        assert entry["retry_amplification"] >= 1.0
        assert entry["recovery_ms_max"] > 0.0


def test_fault_plan_run_roundtrips_and_digest_tracks_plan(storm_run):
    from repro.cluster_scale import ClusterScaleResult

    again = ClusterScaleResult.from_dict(
        json.loads(json.dumps(storm_run.to_dict()))
    )
    assert again.digest() == storm_run.digest()
    # A different cool-down is a different experiment.
    relaxed = dataclasses.replace(
        STORM,
        fault_plan=dataclasses.replace(STORM.fault_plan, cooldown_epochs=0),
    )
    other = run_cluster_scale(hardharvest_block(), FAST, relaxed, workers=1)
    assert other.digest() != storm_run.digest()


def test_fault_plan_report_includes_degradation_table(storm_run):
    from repro.analysis.report import format_cluster_scale_report

    text = format_cluster_scale_report(storm_run)
    assert "Degradation under faults" in text
    assert "goodput" in text and "recov_ms" in text
    assert "health:" in text and "crashed [0]" in text


def test_nominal_digests_match_pre_resilience_goldens():
    """Fault-free runs must keep byte-identical digests to the goldens
    captured before the resilience layer landed (the satellite's
    no-payload-growth guarantee)."""
    here = os.path.dirname(__file__)
    with open(os.path.join(here, "data", "golden_cluster_digests.json")) as fh:
        golden = json.load(fh)["digests"]
    runs = {
        "hardharvest_p2c_s7": (
            hardharvest_block(), FAST,
            ClusterScaleConfig(servers=3, requests=1200, epochs=2,
                               epoch_ms=10.0, warmup_ms=2.0,
                               routing=RoutingPolicy.POWER_OF_TWO),
        ),
        "hardharvest_nominal_s7": (
            hardharvest_block(), FAST,
            ClusterScaleConfig(servers=2, epochs=2, epoch_ms=25.0,
                               warmup_ms=4.0),
        ),
        "noharvest_ll_s3": (
            noharvest(), SimulationConfig(accesses_per_segment=2, seed=3),
            ClusterScaleConfig(servers=4, requests=1600, epochs=2,
                               epoch_ms=10.0, warmup_ms=2.0,
                               routing=RoutingPolicy.LEAST_LOADED),
        ),
    }
    for name, (system, sim, cfg) in runs.items():
        assert run_cluster_scale(system, sim, cfg).digest() == golden[name], name


# ---------------------------------------------------------------------------
# Checkpoints: resume parity and corruption robustness
# ---------------------------------------------------------------------------
@pytest.fixture()
def storm_store(tmp_path, storm_run):
    """A checkpoint directory holding all three epochs of the storm run."""
    key = cluster_run_key(hardharvest_block(), FAST, STORM, list(BATCH_JOBS))
    store = CheckpointStore(root=str(tmp_path), run_key=key)
    result = run_cluster_scale(
        hardharvest_block(), FAST, STORM, workers=1, checkpoint=store,
    )
    assert result.digest() == storm_run.digest()
    return store


def _truncate_to(store, keep_epochs):
    for epoch in range(keep_epochs, STORM.epochs):
        path = store.path(epoch)
        if os.path.exists(path):
            os.remove(path)


@pytest.mark.parametrize("kill_after", [1, 2])
@pytest.mark.parametrize("workers", [1, 4])
def test_resume_parity_at_every_kill_boundary(
    storm_store, storm_run, kill_after, workers
):
    _truncate_to(storm_store, kill_after)
    resumed = run_cluster_scale(
        hardharvest_block(), FAST, STORM, workers=workers,
        checkpoint=storm_store,
    )
    assert resumed.resumed_epochs == kill_after
    assert resumed.digest() == storm_run.digest()
    assert resumed.run_key == storm_store.run_key


def test_full_checkpoint_replay_is_bit_identical(storm_store, storm_run):
    replayed = run_cluster_scale(
        hardharvest_block(), FAST, STORM, workers=1, checkpoint=storm_store,
    )
    assert replayed.resumed_epochs == STORM.epochs
    assert replayed.digest() == storm_run.digest()


@pytest.mark.parametrize("corruption", ["truncate", "garbage", "bitflip",
                                        "version", "format", "run_key"])
def test_corrupt_checkpoint_downgrades_to_cold_run(
    storm_store, storm_run, corruption
):
    """Damage to epoch 0's file must invalidate the entire prefix — the
    loader warns and the run recomputes from scratch, bit-identically."""
    path = storm_store.path(0)
    if corruption == "truncate":
        with open(path) as fh:
            text = fh.read()
        with open(path, "w") as fh:
            fh.write(text[: len(text) // 2])
    elif corruption == "garbage":
        with open(path, "w") as fh:
            fh.write("not json at all")
    elif corruption == "bitflip":
        with open(path) as fh:
            entry = json.load(fh)
        entry["state"]["alloc"][0] += 1  # stamp no longer matches
        with open(path, "w") as fh:
            json.dump(entry, fh)
    elif corruption == "version":
        with open(path) as fh:
            entry = json.load(fh)
        entry["version"] = "0.0.0"
        with open(path, "w") as fh:
            json.dump(entry, fh)
    elif corruption == "format":
        with open(path) as fh:
            entry = json.load(fh)
        entry["format"] = 999
        with open(path, "w") as fh:
            json.dump(entry, fh)
    elif corruption == "run_key":
        with open(path) as fh:
            entry = json.load(fh)
        entry["run_key"] = "deadbeefdeadbeef"
        with open(path, "w") as fh:
            json.dump(entry, fh)

    warnings = []
    storm_store.warn = warnings.append
    resumed = run_cluster_scale(
        hardharvest_block(), FAST, STORM, workers=1, checkpoint=storm_store,
        progress=lambda _m: None,
    )
    assert resumed.resumed_epochs == 0
    assert resumed.digest() == storm_run.digest()
    assert warnings and warnings[0].startswith("checkpoint:")
    if corruption in ("bitflip", "truncate"):
        assert any("digest check" in w or "unreadable" in w for w in warnings)


def test_damaged_middle_checkpoint_resumes_from_last_good_epoch(
    storm_store, storm_run
):
    os.remove(storm_store.path(1))  # epoch 2's file alone must not be used
    resumed = run_cluster_scale(
        hardharvest_block(), FAST, STORM, workers=1, checkpoint=storm_store,
    )
    assert resumed.resumed_epochs == 1
    assert resumed.digest() == storm_run.digest()


def test_checkpoint_save_is_digest_stamped_and_loadable(tmp_path):
    store = CheckpointStore(root=str(tmp_path), run_key="abc123")
    store.save(0, {"epoch": 0}, {"next_epoch": 1, "alloc": [2],
                                 "carryover": [1.5], "cooldown": None})
    entry = store.load_epoch(0)
    assert entry["state"]["carryover"] == [1.5]
    entries, state = store.load(max_epochs=5)
    assert len(entries) == 1 and state["next_epoch"] == 1
    assert store.load_epoch(1) is None  # clean miss: no warning path


def test_run_key_covers_plan_and_version(monkeypatch):
    base = cluster_run_key(hardharvest_block(), FAST, STORM, list(BATCH_JOBS))
    relaxed = dataclasses.replace(
        STORM,
        fault_plan=dataclasses.replace(STORM.fault_plan, cooldown_epochs=0),
    )
    assert cluster_run_key(
        hardharvest_block(), FAST, relaxed, list(BATCH_JOBS)
    ) != base
    monkeypatch.setattr(repro, "__version__", "999.0.0")
    assert cluster_run_key(
        hardharvest_block(), FAST, STORM, list(BATCH_JOBS)
    ) != base


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------
def test_cli_rejects_unknown_fault_plan(capsys):
    assert main(["cluster", "--servers", "2", "--fault-plan", "nope"]) == 2
    assert "unknown fault plan" in capsys.readouterr().err


def test_cli_resume_refuses_mismatched_run_key(capsys):
    code = main([
        "cluster", "--servers", "2", "--epochs", "2",
        "--horizon-ms", "25", "--accesses", "2",
        "--resume", "not-the-right-key", "--no-cache",
    ])
    assert code == 2
    assert "does not match" in capsys.readouterr().err


def test_cli_fault_plan_run_emits_resilience_stats(tmp_path, capsys):
    stats = tmp_path / "stats.json"
    code = main([
        "cluster", "--system", "HardHarvest-Block", "--servers", "2",
        "--requests", "1200", "--epochs", "2", "--horizon-ms", "25",
        "--accesses", "2", "--seed", "7", "--fault-plan", "crash-storm",
        "--checkpoint", "--checkpoint-dir", str(tmp_path / "ckpt"),
        "--no-cache", "--stats-json", str(stats),
    ])
    assert code == 0
    payload = json.loads(stats.read_text())
    assert payload["fault_plan"] == "crash-storm"
    assert len(payload["resilience_curve"]) == 2
    assert payload["resumed_from_epoch"] == 0
    assert payload["checkpoint_run_key"]
    out = capsys.readouterr().out
    assert "Degradation under faults" in out

    # Second invocation auto-resumes from the checkpoints and reproduces
    # the digest without simulating anything new.
    stats2 = tmp_path / "stats2.json"
    code = main([
        "cluster", "--system", "HardHarvest-Block", "--servers", "2",
        "--requests", "1200", "--epochs", "2", "--horizon-ms", "25",
        "--accesses", "2", "--seed", "7", "--fault-plan", "crash-storm",
        "--checkpoint", "--checkpoint-dir", str(tmp_path / "ckpt"),
        "--no-cache", "--stats-json", str(stats2),
    ])
    assert code == 0
    payload2 = json.loads(stats2.read_text())
    assert payload2["resumed_from_epoch"] == 2
    assert payload2["digest"] == payload["digest"]
