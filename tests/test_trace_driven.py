"""Tests for trace-driven load (Alibaba utilization -> request rates)."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.experiment import run_server, run_server_raw
from repro.core.presets import hardharvest_block, noharvest
from repro.workloads.loadgen import generate_arrivals_from_trace
from repro.workloads.microservices import SERVICES


class TestGenerator:
    def test_rate_tracks_utilization(self):
        rng = np.random.default_rng(0)
        p = SERVICES[0]
        interval = 100_000_000  # 100 ms
        arrivals = generate_arrivals_from_trace(
            rng, p, 4, [0.1, 0.8, 0.1], interval
        )
        counts = [0, 0, 0]
        for t in arrivals:
            counts[min(2, t // interval)] += 1
        assert counts[1] > 3 * counts[0]
        assert counts[1] > 3 * counts[2]

    def test_zero_utilization_interval_has_no_arrivals(self):
        rng = np.random.default_rng(1)
        arrivals = generate_arrivals_from_trace(
            rng, SERVICES[0], 4, [0.0, 0.5], 50_000_000
        )
        assert all(t >= 50_000_000 for t in arrivals)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            generate_arrivals_from_trace(rng, SERVICES[0], 4, [], 1000)
        with pytest.raises(ValueError):
            generate_arrivals_from_trace(rng, SERVICES[0], 4, [1.5], 1000)
        with pytest.raises(ValueError):
            generate_arrivals_from_trace(rng, SERVICES[0], 4, [0.5], 0)

    def test_max_count_cap(self):
        rng = np.random.default_rng(2)
        arrivals = generate_arrivals_from_trace(
            rng, SERVICES[0], 4, [0.9] * 50, 100_000_000, max_count=25
        )
        assert len(arrivals) == 25


class TestTraceDrivenRuns:
    CFG = SimulationConfig(
        horizon_ms=100, warmup_ms=20, accesses_per_segment=8,
        trace_driven=True, seed=9,
    )

    def test_completes_and_reports(self):
        res = run_server(noharvest(), self.CFG)
        assert res.avg_p99_ms() > 0
        assert res.counters.get("horizon_cap_hit", 0) == 0

    def test_harvesting_still_works(self):
        res = run_server(hardharvest_block(), self.CFG)
        assert res.counters["lends"] > 0
        assert res.avg_busy_cores > 15

    def test_deterministic(self):
        a = run_server(noharvest(), self.CFG)
        b = run_server(noharvest(), self.CFG)
        assert a.p99_ms == b.p99_ms

    def test_different_vms_get_different_instances(self):
        sim = run_server_raw(noharvest(), self.CFG)
        counts = {vm.name: sim.latency[vm.name].count for vm in sim.primary_vms}
        # Per-VM request volumes differ (different sampled instances).
        assert len(set(counts.values())) > 2
