"""Tests for the backend tier (Memcached/Redis/MongoDB servers)."""

import pytest

from repro.cluster.backend import (
    DEFAULT_WORKERS,
    SERVICE_BACKEND,
    BackendService,
    BackendTier,
)
from repro.config import SimulationConfig
from repro.core.experiment import run_server_raw
from repro.core.presets import noharvest
from repro.sim.engine import Simulator
from repro.workloads.microservices import SERVICE_NAMES


class TestBackendService:
    def test_parallel_workers_no_queueing(self):
        sim = Simulator()
        backend = BackendService(sim, "m", workers=2)
        done = []
        backend.submit(100, lambda: done.append(sim.now))
        backend.submit(100, lambda: done.append(sim.now))
        sim.run()
        assert done == [100, 100]
        assert backend.mean_queue_us() == 0.0

    def test_queueing_when_saturated(self):
        sim = Simulator()
        backend = BackendService(sim, "m", workers=1)
        done = []
        for _ in range(3):
            backend.submit(100, lambda: done.append(sim.now))
        sim.run()
        assert done == [100, 200, 300]
        assert backend.max_queue_depth == 2
        # Two calls queued: 100 ns and 200 ns of queueing over 3 calls.
        assert backend.mean_queue_us() == pytest.approx(0.1)

    def test_fifo_order(self):
        sim = Simulator()
        backend = BackendService(sim, "m", workers=1)
        order = []
        backend.submit(50, lambda: order.append("a"))
        backend.submit(10, lambda: order.append("b"))
        backend.submit(10, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_validation(self):
        with pytest.raises(ValueError):
            BackendService(Simulator(), "m", workers=0)


class TestBackendTier:
    def test_every_service_has_a_backend(self):
        assert set(SERVICE_BACKEND) == set(SERVICE_NAMES)
        tier = BackendTier(Simulator())
        for name in SERVICE_NAMES:
            assert tier.for_service(name).name in DEFAULT_WORKERS

    def test_custom_sizing(self):
        tier = BackendTier(Simulator(), workers={"mongodb": 2})
        assert tier.services["mongodb"].workers == 2
        assert tier.services["redis"].workers == DEFAULT_WORKERS["redis"]


class TestBackendInEngine:
    def test_blocking_calls_hit_backends(self):
        cfg = SimulationConfig(horizon_ms=80, warmup_ms=10,
                               accesses_per_segment=8, seed=4)
        sim = run_server_raw(noharvest(), cfg)
        stats = sim.backends.stats()
        total_calls = sum(s["calls"] for s in stats.values())
        # Every blocking call of every completed request went to a backend.
        assert total_calls > 500
        assert stats["mongodb"]["calls"] > 0
        assert stats["memcached"]["calls"] > 0
        assert stats["redis"]["calls"] > 0

    def test_undersized_backend_congests_and_inflates_latency(self):
        cfg = SimulationConfig(horizon_ms=80, warmup_ms=10,
                               accesses_per_segment=8, seed=4)
        normal = run_server_raw(noharvest(), cfg)
        tiny = run_server_raw(noharvest(), cfg)
        # Rebuild the tiny run with a choked mongodb tier.
        from repro.cluster.server import ServerSimulation

        sim2 = ServerSimulation(noharvest(), cfg)
        sim2.backends = BackendTier(sim2.sim, workers={"mongodb": 1})
        sim2.run()
        assert sim2.backends.services["mongodb"].mean_queue_us() > 0
        # MongoDB-bound services (User, PstStr, CPost) get slower.
        assert sim2.latency["User"].p99() > normal.latency["User"].p99()
