"""VM lifecycle scenario: dynamic subqueue resizing under live traffic.

Section 4.1.2: when a new VM is spawned, it takes chunks from the tails of
active VMs' subqueues; displaced entries move to the In-memory Overflow
Subqueue; when a VM departs, its chunks join the remaining subqueues.
This scenario drives the controller with the event engine while VMs come
and go, verifying the invariants hold *during* traffic, not just at rest.
"""


from repro.config import ControllerConfig
from repro.hw.controller import HardHarvestController
from repro.sim.engine import Simulator
from repro.sim.units import US


class TrafficScenario:
    """Feeds requests to whichever VMs exist; drains them continuously."""

    def __init__(self):
        self.sim = Simulator()
        self.ctrl = HardHarvestController(ControllerConfig(num_chunks=8,
                                                           entries_per_chunk=4),
                                          num_cores=36)
        self.delivered = 0
        self.completed = 0
        self.spilled = 0

    def start_traffic(self, period_ns=5 * US):
        def tick():
            for vm_id, qm in list(self.ctrl.qms.items()):
                token = f"r{self.delivered}"
                if not self.ctrl.deliver(vm_id, token):
                    self.spilled += 1
                self.delivered += 1
            self.sim.schedule(period_ns, tick)

        self.sim.schedule(0, tick)

    def start_draining(self, period_ns=7 * US):
        def drain():
            for qm in list(self.ctrl.qms.values()):
                req = qm.dequeue()
                if req is not None:
                    qm.complete(req)
                    self.completed += 1
            self.sim.schedule(period_ns, drain)

        self.sim.schedule(0, drain)


def test_vm_churn_under_load():
    scenario = TrafficScenario()
    sim, ctrl = scenario.sim, scenario.ctrl
    ctrl.register_vm(0, True, 4)
    ctrl.register_vm(1, True, 4)
    scenario.start_traffic()
    scenario.start_draining()

    events = []

    def spawn(vm_id, cores):
        ctrl.register_vm(vm_id, True, cores)
        events.append(("spawn", vm_id))
        assert ctrl.rq.chunk_owner_invariant()

    def retire(vm_id):
        qm = ctrl.qm_for(vm_id)
        # Drain the departing VM's queue first (a VM leaves only when done).
        while True:
            req = qm.dequeue()
            if req is None:
                break
            qm.complete(req)
            scenario.completed += 1
        qm.subqueue.overflow.clear()
        ctrl.deregister_vm(vm_id)
        events.append(("retire", vm_id))
        assert ctrl.rq.chunk_owner_invariant()

    sim.schedule(50 * US, spawn, 2, 4)
    sim.schedule(120 * US, spawn, 3, 8)
    sim.schedule(200 * US, retire, 0)
    sim.schedule(300 * US, spawn, 4, 4)
    sim.run(until=500 * US)

    assert events == [("spawn", 2), ("spawn", 3), ("retire", 0), ("spawn", 4)]
    assert ctrl.rq.chunk_owner_invariant()
    assert scenario.delivered > 100
    assert scenario.completed > 50
    # Small chunks + churn: the overflow path was genuinely exercised.
    assert scenario.spilled > 0
    # Every surviving VM still owns at least one chunk.
    for qm in ctrl.qms.values():
        assert len(qm.subqueue.rq_map) >= 1


def test_subqueue_shrink_spills_and_recovers_under_load():
    scenario = TrafficScenario()
    ctrl = scenario.ctrl
    ctrl.register_vm(0, True, 4)
    qm = ctrl.qm_for(0)
    # Fill the hardware queue completely (8 chunks x 4 entries).
    for i in range(32):
        assert ctrl.deliver(0, f"r{i}")
    assert not ctrl.deliver(0, "overflowed")  # 33rd spills
    assert qm.subqueue.total_pending() == 33
    # A new VM takes half the chunks: capacity halves, entries spill.
    ctrl.register_vm(1, True, 4)
    assert qm.subqueue.capacity == 16
    assert qm.subqueue.total_pending() == 33  # nothing lost
    # Drain fully: overflow promotes back into hardware.
    drained = 0
    while True:
        req = qm.dequeue()
        if req is None:
            break
        qm.complete(req)
        drained += 1
    assert drained == 33
    assert len(qm.subqueue.overflow) == 0
