"""Tests for the hardware Request Queue: chunks, subqueues, overflow."""

import pytest

from repro.hw.request_queue import RequestQueue, Subqueue


class TestSubqueue:
    def make(self, chunks=1, epc=4):
        sq = Subqueue(vm_id=0, entries_per_chunk=epc)
        for c in range(chunks):
            sq.grant_chunk(c)
        return sq

    def test_fifo_order(self):
        sq = self.make()
        sq.enqueue("a")
        sq.enqueue("b")
        assert sq.dequeue_ready() == "a"
        assert sq.dequeue_ready() == "b"
        assert sq.dequeue_ready() is None

    def test_block_keeps_entry_in_place(self):
        sq = self.make()
        sq.enqueue("a")
        sq.enqueue("b")
        req = sq.dequeue_ready()
        sq.mark_blocked(req)
        # 'b' is served while 'a' blocks; 'a' still occupies its entry.
        assert sq.dequeue_ready() == "b"
        assert sq.hw_occupancy == 2
        sq.mark_ready("a")
        # FIFO: 'a' was older, resumes first.
        assert sq.dequeue_ready() == "a"

    def test_state_transition_errors(self):
        sq = self.make()
        sq.enqueue("a")
        with pytest.raises(ValueError):
            sq.mark_blocked("a")  # not running
        req = sq.dequeue_ready()
        with pytest.raises(ValueError):
            sq.mark_ready(req)  # not blocked
        sq.complete(req)
        with pytest.raises(KeyError):
            sq.complete(req)  # already gone

    def test_requeue_preempted(self):
        sq = self.make()
        sq.enqueue("a")
        req = sq.dequeue_ready()
        sq.requeue_ready(req)  # preemption returns it to READY
        assert sq.dequeue_ready() == "a"

    def test_overflow_spill_and_promote(self):
        sq = self.make(chunks=1, epc=2)
        assert sq.enqueue("a") is True
        assert sq.enqueue("b") is True
        assert sq.enqueue("c") is False  # spilled to overflow
        assert sq.total_pending() == 3
        req = sq.dequeue_ready()
        sq.complete(req)  # frees a hardware slot; 'c' promotes
        assert sq.hw_occupancy == 2
        assert sq.overflow_highwater == 1

    def test_shed_chunk_spills_to_overflow(self):
        sq = self.make(chunks=2, epc=2)
        for name in "abcd":
            sq.enqueue(name)
        chunk = sq.shed_chunk()
        assert chunk == 1
        assert sq.capacity == 2
        assert sq.hw_occupancy == 2
        assert len(sq.overflow) == 2
        # Order preserved overall: a,b in hardware; c,d in overflow.
        assert sq.dequeue_ready() == "a"

    def test_shed_chunk_protects_running_entries(self):
        sq = self.make(chunks=2, epc=1)
        sq.enqueue("a")
        sq.enqueue("b")
        ra = sq.dequeue_ready()
        rb = sq.dequeue_ready()
        assert (ra, rb) == ("a", "b")
        # Both entries are RUNNING: shedding a chunk cannot displace them.
        sq.shed_chunk()
        assert sq.hw_occupancy == 2  # transiently over capacity, tolerated


class TestRequestQueue:
    def test_create_from_free_pool(self):
        rq = RequestQueue(num_chunks=4, entries_per_chunk=2)
        sq = rq.create_subqueue(1, target_chunks=2)
        assert len(sq.rq_map) == 2
        assert len(rq.free_chunks) == 2
        assert rq.chunk_owner_invariant()

    def test_new_vm_takes_chunks_from_largest(self):
        rq = RequestQueue(num_chunks=4, entries_per_chunk=2)
        sq1 = rq.create_subqueue(1, target_chunks=4)
        assert len(sq1.rq_map) == 4
        sq2 = rq.create_subqueue(2, target_chunks=2)
        assert len(sq2.rq_map) == 2
        assert len(sq1.rq_map) == 2
        assert rq.chunk_owner_invariant()

    def test_departure_redistributes_chunks(self):
        rq = RequestQueue(num_chunks=4, entries_per_chunk=2)
        rq.create_subqueue(1, 2)
        rq.create_subqueue(2, 2)
        rq.destroy_subqueue(1)
        assert len(rq.subqueues[2].rq_map) == 4
        assert rq.chunk_owner_invariant()

    def test_destroy_with_pending_rejected(self):
        rq = RequestQueue(4, 2)
        sq = rq.create_subqueue(1, 2)
        sq.enqueue("x")
        with pytest.raises(ValueError):
            rq.destroy_subqueue(1)

    def test_last_vm_departure_returns_chunks_to_pool(self):
        rq = RequestQueue(4, 2)
        rq.create_subqueue(1, 4)
        rq.destroy_subqueue(1)
        assert sorted(rq.free_chunks) == [0, 1, 2, 3]

    def test_duplicate_vm_rejected(self):
        rq = RequestQueue(4, 2)
        rq.create_subqueue(1, 1)
        with pytest.raises(ValueError):
            rq.create_subqueue(1, 1)

    def test_donor_keeps_at_least_one_chunk(self):
        rq = RequestQueue(2, 2)
        rq.create_subqueue(1, 2)
        sq2 = rq.create_subqueue(2, 2)
        # Only one chunk could be taken: donor keeps one.
        assert len(rq.subqueues[1].rq_map) == 1
        assert len(sq2.rq_map) == 1
        assert rq.chunk_owner_invariant()

    def test_paper_geometry(self):
        """Table 1: 32 chunks x 64 entries = 2K-entry RQ."""
        rq = RequestQueue(32, 64)
        sq = rq.create_subqueue(0, 32)
        assert sq.capacity == 2048
