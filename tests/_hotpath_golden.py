"""Shared golden-digest machinery for the fast-path parity suites.

The digest of a run is the sha256 of the canonical JSON of its full
:class:`~repro.core.metrics.ServerResult` — every latency percentile,
hit rate, counter, and resilience metric participates, so *any* numeric
perturbation introduced by a hot-path change flips the digest.

``tests/data/golden_hotpath.json`` pins the digests produced by the
original (pre-fast-path) per-access implementation; the parity tests
assert that the memory fast path, the scheduler fast path
(``REPRO_SCHED_SLOWPATH``), and every combination reproduce them
bit-for-bit.  Regenerate with::

    PYTHONPATH=src python tests/_hotpath_golden.py --write
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import replace

from repro.config import SimulationConfig, TelemetryConfig
from repro.core.experiment import run_server
from repro.core.export import server_result_to_dict
from repro.core.presets import harvest_block, hardharvest_block
from repro.faults.scenarios import get_scenario
from repro.parallel.cache import canonical_json

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_hotpath.json")

#: The two harvesting worlds the fast path must reproduce exactly: the
#: software stack (per-core steering, full flush) and the paper's hardware
#: stack (QM subqueues, harvest-region flush, HardHarvest replacement).
SYSTEMS = {
    "SW": harvest_block,
    "HardHarvest": hardharvest_block,
}
SEEDS = (0, 1, 2)

#: Small but non-trivial: long enough for lends/reclaims/flushes and LLC
#: pressure, short enough for the suite to stay fast.
_BASE_SIM = dict(horizon_ms=30.0, warmup_ms=6.0, accesses_per_segment=12)

#: Configuration variants pinned beyond the plain seeds: one faulted run
#: per system (resilience metrics participate in the digest) and one
#: telemetry-enabled run per system (telemetry's zero-perturbation
#: contract means its digest must equal the plain seed-0 one — the pin
#: catches any probe or tracer that starts leaking into results).
_FAULT_SCENARIO = "crash-storm"
VARIANTS = ("", _FAULT_SCENARIO, "telemetry")


def _simcfg(seed: int, variant: str = "") -> SimulationConfig:
    cfg = SimulationConfig(seed=seed, **_BASE_SIM)
    if variant == _FAULT_SCENARIO:
        scenario = get_scenario(_FAULT_SCENARIO, _BASE_SIM["horizon_ms"])
        cfg = replace(cfg, faults=scenario.schedule, client=scenario.client)
    elif variant == "telemetry":
        cfg = replace(cfg, telemetry=TelemetryConfig(enabled=True))
    elif variant:
        raise ValueError(f"unknown golden variant {variant!r}")
    return cfg


def run_digest(system_key: str, seed: int, variant: str = "") -> str:
    """Run one pinned configuration and return its result digest."""
    system = SYSTEMS[system_key]()
    result = run_server(system, _simcfg(seed, variant))
    payload = canonical_json(server_result_to_dict(result))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def all_cases():
    for system_key in SYSTEMS:
        for seed in SEEDS:
            yield system_key, seed, ""
    # Resilience and telemetry: one seed per system keeps them affordable.
    for system_key in SYSTEMS:
        yield system_key, 0, _FAULT_SCENARIO
    for system_key in SYSTEMS:
        yield system_key, 0, "telemetry"


def case_label(system_key: str, seed: int, variant: str = "") -> str:
    return f"{system_key}/seed{seed}" + (f"/{variant}" if variant else "")


def compute_all() -> dict:
    return {
        case_label(sk, seed, variant): run_digest(sk, seed, variant)
        for sk, seed, variant in all_cases()
    }


def load_golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true",
                        help="overwrite the pinned golden digests")
    args = parser.parse_args()
    digests = compute_all()
    print(json.dumps(digests, indent=2))
    if args.write:
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w") as fh:
            json.dump(digests, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {GOLDEN_PATH}")
