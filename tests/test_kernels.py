"""Tests for the executable batch mini-kernels."""

import numpy as np
import pytest

from repro.workloads.kernels import (
    KERNELS,
    derive_batch_profile,
    estimate_skew,
    run_bfs,
    run_cc,
    run_dc,
    run_hadoop,
    run_lrtrain,
    run_mummer,
    run_pagerank,
    run_rndftrain,
)


def test_registry_matches_batch_names():
    from repro.workloads.batch import BATCH_NAMES

    assert set(KERNELS) == set(BATCH_NAMES)


def test_bfs_visits_most_nodes():
    result = run_bfs(n=1000, avg_degree=8)
    assert result.work_units > 900  # random graph is mostly connected
    assert result.pages_touched > 0
    assert result.trace


def test_cc_counts_components():
    result = run_cc(n=500, avg_degree=6)
    assert 1 <= result.result <= 500
    assert result.work_units == 500 * 6


def test_dc_finds_max_degree_node():
    result = run_dc(n=500, avg_degree=8)
    assert 0 <= result.result < 500


def test_pagerank_mass_conserved():
    result = run_pagerank(n=400, avg_degree=6, iters=3)
    ranks = result.result
    assert all(r > 0 for r in ranks)


def test_lrtrain_learns():
    result = run_lrtrain(samples=800, features=12, epochs=3)
    assert result.result > 0.8  # accuracy on a separable-ish problem


def test_rndftrain_builds_forest():
    result = run_rndftrain(samples=400, features=8, trees=5)
    assert result.result == 5
    assert result.work_units == 5 * 8  # trees x splits evaluated


def test_hadoop_wordcount_top_words():
    result = run_hadoop(docs=50, words_per_doc=100)
    top = result.result
    assert len(top) == 5
    # Zipf input: the most common word dominates.
    assert top[0][1] >= top[-1][1]


def test_mummer_finds_matches():
    result = run_mummer(genome_len=20_000, queries=40)
    assert result.result > 0  # reads come from the genome, mostly match
    assert result.work_units == 40


def test_estimate_skew_uniform_vs_hot():
    rng = np.random.default_rng(0)
    uniform = list(rng.integers(0, 100, 20_000))
    hot = list((rng.random(20_000) ** 4 * 100).astype(int))
    assert estimate_skew(uniform) == pytest.approx(1.0, abs=0.15)
    assert estimate_skew(hot) > 2.0
    with pytest.raises(ValueError):
        estimate_skew([])


def test_derive_batch_profile_shape():
    prof = derive_batch_profile(run_dc(n=300))
    assert prof["name"] == "DC"
    assert prof["data_pages"] > 0
    assert prof["skew"] >= 1.0
    assert prof["accesses_per_unit"] > 0


def test_graph_kernels_less_skewed_than_training():
    """Locality ordering grounds the batch profiles: PageRank's sweep is
    closer to uniform than LRTrain's hot weight vector."""
    pr = derive_batch_profile(run_pagerank(n=800, iters=2))
    lr = derive_batch_profile(run_lrtrain(samples=600, epochs=2))
    assert lr["skew"] > pr["skew"]
