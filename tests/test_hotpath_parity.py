"""Bit-identity guard for the memory-hierarchy fast path.

The batched fast path (:meth:`CoreMemory.access_batch`, vectorized
sampling, hashed per-set tag indexes) must reproduce the reference
per-access implementation *exactly* — every counter, latency percentile,
and resilience metric.  ``tests/data/golden_hotpath.json`` pins digests
computed by the reference implementation; these tests hold the fast path
(the default) and the live slow path (``REPRO_MEM_SLOWPATH=1``) to them.

Regenerate the pins (only when intentionally changing simulation
behavior) with ``PYTHONPATH=src python tests/_hotpath_golden.py --write``.
"""

import pytest

from repro.core.experiment import run_server_raw
from repro.core.presets import hardharvest_block
from repro.config import SimulationConfig
from repro.mem.cache import SLOWPATH_ENV

from tests._hotpath_golden import all_cases, case_label, load_golden, run_digest

GOLDEN = load_golden()
CASES = list(all_cases())


@pytest.mark.parametrize(
    "system_key,seed,faulted",
    CASES,
    ids=[case_label(*c) for c in CASES],
)
def test_fast_path_matches_golden(system_key, seed, faulted):
    """Default (fast) path reproduces the pinned reference digests."""
    assert run_digest(system_key, seed, faulted) == GOLDEN[
        case_label(system_key, seed, faulted)
    ]


@pytest.mark.parametrize("system_key", ["SW", "HardHarvest"])
def test_slow_path_matches_golden(system_key, monkeypatch):
    """The in-tree reference implementation still produces the pins.

    One seed per system keeps this affordable; it guards the *baseline*
    of ``benchmarks/hotpath_speedup.py`` against silent drift (a speedup
    measured against a broken reference would be meaningless).
    """
    monkeypatch.setenv(SLOWPATH_ENV, "1")
    assert run_digest(system_key, 0) == GOLDEN[case_label(system_key, 0, False)]


def _check_array(arr, label):
    """The hashed index and valid_mask must mirror the per-way truth."""
    for set_index, cset in arr.sets.items():
        expect_mask = 0
        expect_index = {}
        for w in range(cset.ways):
            if cset.valid[w]:
                expect_mask |= 1 << w
                expect_index[cset.tags[w]] = expect_index.get(cset.tags[w], 0) | (1 << w)
        assert cset.valid_mask == expect_mask, f"{label} set {set_index}"
        assert cset.index == expect_index, f"{label} set {set_index}"


def test_index_consistency_after_run():
    """After a full simulated run every set's hashed index is coherent.

    ``settle()`` first applies any pending lazy way-flushes, then the
    index/valid_mask mirrors are compared against the per-way arrays —
    the invariant every fast-path fill/evict/reconcile must preserve.
    """
    sim = run_server_raw(
        hardharvest_block(),
        SimulationConfig(seed=0, horizon_ms=10.0, warmup_ms=2.0,
                         accesses_per_segment=8),
    )
    arrays = []
    for core in sim.cores:
        mem = core.memory
        arrays += [
            (mem.l1d.array, f"core{core.core_id}.l1d"),
            (mem.l1i.array, f"core{core.core_id}.l1i"),
            (mem.l2.array, f"core{core.core_id}.l2"),
            (mem.l1_tlb.array, f"core{core.core_id}.l1tlb"),
            (mem.l2_tlb.array, f"core{core.core_id}.l2tlb"),
        ]
    seen = 0
    for arr, label in arrays:
        arr.settle()
        _check_array(arr, label)
        seen += len(arr.sets)
    assert seen > 100  # the run genuinely touched the hierarchy
