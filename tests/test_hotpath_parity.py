"""Bit-identity guard for the memory and scheduler fast paths.

The batched memory fast path (:meth:`CoreMemory.access_batch`, vectorized
sampling, hashed per-set tag indexes) and the scheduler fast path (the
engine's batched same-timestamp drain, the subqueue status-code mirrors,
the NumPy ready-scan kernels) must reproduce the reference per-access /
per-event implementations *exactly* — every counter, latency percentile,
and resilience metric.  ``tests/data/golden_hotpath.json`` pins digests
computed by the reference implementation; these tests hold the default
fast paths and every live slow-path combination (``REPRO_MEM_SLOWPATH``,
``REPRO_SCHED_SLOWPATH``) to them.

Regenerate the pins (only when intentionally changing simulation
behavior) with ``PYTHONPATH=src python tests/_hotpath_golden.py --write``.
"""

import pytest

from repro.core.experiment import run_server_raw
from repro.core.presets import harvest_block, hardharvest_block
from repro.config import SimulationConfig
from repro.hw.request_queue import (
    CODE_BLOCKED,
    CODE_READY,
    CODE_RUNNING,
    RequestStatus,
)
from repro.hw.sched_kernels import READY_BYTE
from repro.mem.cache import SLOWPATH_ENV
from repro.sim.engine import SCHED_SLOWPATH_ENV

from tests._hotpath_golden import all_cases, case_label, load_golden, run_digest

GOLDEN = load_golden()
CASES = list(all_cases())

_STATUS_CODE = {
    RequestStatus.READY: CODE_READY,
    RequestStatus.RUNNING: CODE_RUNNING,
    RequestStatus.BLOCKED: CODE_BLOCKED,
}


@pytest.mark.parametrize(
    "system_key,seed,variant",
    CASES,
    ids=[case_label(*c) for c in CASES],
)
def test_fast_path_matches_golden(system_key, seed, variant):
    """Default (fast) paths reproduce the pinned reference digests."""
    assert run_digest(system_key, seed, variant) == GOLDEN[
        case_label(system_key, seed, variant)
    ]


def test_telemetry_is_zero_perturbation():
    """The pinned telemetry-on digests equal the plain seed-0 digests.

    Telemetry's contract is that enabling it never changes simulation
    results; checking it at the pin level (instead of re-running) makes
    the golden file itself document the property.
    """
    for system_key in ("SW", "HardHarvest"):
        assert GOLDEN[case_label(system_key, 0, "telemetry")] == GOLDEN[
            case_label(system_key, 0)
        ]


@pytest.mark.parametrize("system_key", ["SW", "HardHarvest"])
def test_mem_slow_path_matches_golden(system_key, monkeypatch):
    """The in-tree memory reference implementation still produces the pins.

    One seed per system keeps this affordable; it guards the *baseline*
    of ``benchmarks/hotpath_speedup.py`` against silent drift (a speedup
    measured against a broken reference would be meaningless).
    """
    monkeypatch.setenv(SLOWPATH_ENV, "1")
    assert run_digest(system_key, 0) == GOLDEN[case_label(system_key, 0)]


@pytest.mark.parametrize("system_key", ["SW", "HardHarvest"])
def test_sched_slow_path_matches_golden(system_key, monkeypatch):
    """The reference event loop + object-walk queue scans produce the pins.

    Guards the baseline of ``benchmarks/sched_speedup.py`` the same way
    the memory slow-path test guards ``hotpath_speedup.py``.
    """
    monkeypatch.setenv(SCHED_SLOWPATH_ENV, "1")
    assert run_digest(system_key, 0) == GOLDEN[case_label(system_key, 0)]


@pytest.mark.parametrize("system_key", ["SW", "HardHarvest"])
def test_both_slow_paths_match_golden(system_key, monkeypatch):
    """Both reference implementations together — the combined-speedup
    denominator of ``benchmarks/sched_speedup.py`` — still match."""
    monkeypatch.setenv(SLOWPATH_ENV, "1")
    monkeypatch.setenv(SCHED_SLOWPATH_ENV, "1")
    assert run_digest(system_key, 0) == GOLDEN[case_label(system_key, 0)]


def test_ready_byte_matches_code_ready():
    """The NumPy scan kernel and the subqueue mirror agree on the READY
    encoding (and on READY == 0, which ``bytearray.find(0)`` relies on)."""
    assert READY_BYTE == CODE_READY == 0


# ----------------------------------------------------------------------
# Structural mirror invariants
# ----------------------------------------------------------------------

def _check_array(arr, label):
    """The hashed index and valid_mask must mirror the per-way truth."""
    for set_index, cset in arr.sets.items():
        expect_mask = 0
        expect_index = {}
        for w in range(cset.ways):
            if cset.valid[w]:
                expect_mask |= 1 << w
                expect_index[cset.tags[w]] = expect_index.get(cset.tags[w], 0) | (1 << w)
        assert cset.valid_mask == expect_mask, f"{label} set {set_index}"
        assert cset.index == expect_index, f"{label} set {set_index}"


def _check_subqueue(sq, label):
    """``_codes``/``_ready_count`` must mirror the entry objects exactly."""
    assert len(sq._codes) == len(sq.entries), label
    for i, entry in enumerate(sq.entries):
        assert sq._codes[i] == _STATUS_CODE[entry.status], f"{label} entry {i}"
    ready = sum(1 for e in sq.entries if e.status is RequestStatus.READY)
    assert sq._ready_count == ready, label


def _subqueues(sim):
    """Every live subqueue of a finished server simulation, labeled."""
    out = []
    for vm in sim.primary_vms:
        queue = vm.queue
        sq = getattr(queue, "_sq", None)  # SoftwareQueue
        if sq is None:
            sq = queue.qm.subqueue  # SharedQueueAdapter
        out.append((sq, f"vm{vm.vm_id}.{type(queue).__name__}"))
    return out


def test_index_consistency_after_run():
    """After a full simulated run every set's hashed index is coherent.

    ``settle()`` first applies any pending lazy way-flushes, then the
    index/valid_mask mirrors are compared against the per-way arrays —
    the invariant every fast-path fill/evict/reconcile must preserve.
    """
    sim = run_server_raw(
        hardharvest_block(),
        SimulationConfig(seed=0, horizon_ms=10.0, warmup_ms=2.0,
                         accesses_per_segment=8),
    )
    arrays = []
    for core in sim.cores:
        mem = core.memory
        arrays += [
            (mem.l1d.array, f"core{core.core_id}.l1d"),
            (mem.l1i.array, f"core{core.core_id}.l1i"),
            (mem.l2.array, f"core{core.core_id}.l2"),
            (mem.l1_tlb.array, f"core{core.core_id}.l1tlb"),
            (mem.l2_tlb.array, f"core{core.core_id}.l2tlb"),
        ]
    seen = 0
    for arr, label in arrays:
        arr.settle()
        _check_array(arr, label)
        seen += len(arr.sets)
    assert seen > 100  # the run genuinely touched the hierarchy


@pytest.mark.parametrize(
    "preset",
    [harvest_block, hardharvest_block],
    ids=["SW", "HardHarvest"],
)
def test_queue_mirror_consistency_after_run(preset):
    """After a full run every subqueue's status-code mirror is coherent.

    ``_codes`` must track ``entries[i].status`` positionally and
    ``_ready_count`` must equal the number of READY entries — the
    invariant every fast-path enqueue/dequeue/block/shed must preserve.
    Covers both queue shapes: software per-core steering queues and the
    hardware QM subqueues.
    """
    sim = run_server_raw(
        preset(),
        SimulationConfig(seed=0, horizon_ms=10.0, warmup_ms=2.0,
                         accesses_per_segment=8),
    )
    for sq, label in _subqueues(sim):
        _check_subqueue(sq, label)
