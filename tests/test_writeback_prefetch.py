"""Tests for write-back modeling and the optional next-line prefetcher."""

import pytest

from repro.mem.cache import Cache, SetAssocArray
from repro.mem.partition import full_mask
from repro.mem.prefetch import NextLinePrefetcher
from repro.mem.replacement import LruPolicy


class TestWriteback:
    def test_dirty_eviction_counts_writeback(self):
        arr = SetAssocArray("c", 1, 2, LruPolicy())
        allowed = full_mask(2)
        arr.access(0, 1, False, allowed, write=True)
        arr.access(0, 2, False, allowed)
        assert arr.writebacks == 0
        arr.access(0, 3, False, allowed)  # evicts dirty tag 1
        assert arr.writebacks == 1

    def test_clean_eviction_free(self):
        arr = SetAssocArray("c", 1, 2, LruPolicy())
        allowed = full_mask(2)
        for tag in (1, 2, 3, 4):
            arr.access(0, tag, False, allowed)
        assert arr.writebacks == 0

    def test_write_hit_dirties_line(self):
        arr = SetAssocArray("c", 1, 2, LruPolicy())
        allowed = full_mask(2)
        arr.access(0, 1, False, allowed)          # clean fill
        arr.access(0, 1, False, allowed, write=True)  # write hit
        arr.access(0, 2, False, allowed)
        arr.access(0, 3, False, allowed)          # evicts tag 1 (dirty)
        assert arr.writebacks == 1

    def test_flush_writes_back_dirty_lines(self):
        arr = SetAssocArray("c", 2, 2, LruPolicy())
        allowed = full_mask(2)
        arr.access(0, 1, False, allowed, write=True)
        arr.access(1, 2, False, allowed)
        arr.flush_all()
        arr.settle()
        assert arr.writebacks == 1  # only the dirty line

    def test_refill_after_flush_is_clean(self):
        arr = SetAssocArray("c", 1, 1, LruPolicy())
        allowed = full_mask(1)
        arr.access(0, 1, False, allowed, write=True)
        arr.flush_all()
        arr.access(0, 2, False, allowed)  # reconcile + clean fill
        arr.access(0, 3, False, allowed)  # evict clean tag 2
        assert arr.writebacks == 1  # just the flushed dirty line


class TestPrefetcher:
    def make(self, degree=1, sets=8, ways=2):
        cache = Cache("L1", sets * ways * 64, ways, 64, 5, LruPolicy())
        return NextLinePrefetcher(cache, degree)

    def test_sequential_stream_mostly_hits(self):
        pf = self.make(degree=2)
        allowed = full_mask(2)
        hits = sum(pf.access(i * 64, False, allowed) for i in range(64))
        assert hits > 32  # prefetching converts most misses into hits
        assert pf.prefetches_issued > 0
        assert pf.accuracy > 0.5

    def test_random_stream_low_accuracy(self):
        import numpy as np

        pf = self.make(degree=1, sets=4, ways=2)
        allowed = full_mask(2)
        rng = np.random.default_rng(0)
        for addr in rng.integers(0, 10_000, 300) * 64 * 7:
            pf.access(int(addr), False, allowed)
        assert pf.accuracy < 0.4

    def test_prefetch_respects_allowed_mask(self):
        """Prefetches issued under a restricted mask stay inside it."""
        cache = Cache("L1", 4 * 4 * 64, 4, 64, 5, LruPolicy())
        pf = NextLinePrefetcher(cache, degree=2)
        harvest = 0b0011
        for i in range(32):
            pf.access(i * 64, False, harvest)
        cache.array.settle()
        for cset in cache.array.sets.values():
            for w in range(4):
                if cset.valid[w]:
                    assert (harvest >> w) & 1

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            self.make(degree=0)
