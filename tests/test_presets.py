"""Tests for the system presets and ablation ladders."""


from repro.config import (
    FlushScope,
    HarvestTrigger,
    ReplacementKind,
    SystemKind,
)
from repro.core.presets import (
    all_systems,
    build_system,
    fig4_kvm,
    fig4_no_move,
    fig4_opt,
    fig5_flush,
    fig5_harvest,
    fig5_no_flush,
    fig12_ladder,
    fig13_points,
    fig15_ladder,
    harvest_block,
    harvest_term,
    hardharvest_block,
    hardharvest_term,
    noharvest,
)


class TestFiveSystems:
    def test_names_and_order(self):
        assert list(all_systems()) == [
            "NoHarvest", "Harvest-Term", "Harvest-Block",
            "HardHarvest-Term", "HardHarvest-Block",
        ]

    def test_noharvest_never_triggers(self):
        assert noharvest().trigger is HarvestTrigger.NEVER
        assert not noharvest().hardware_scheduling

    def test_software_systems_flush_fully(self):
        for cfg in (harvest_term(), harvest_block()):
            assert cfg.flush_scope is FlushScope.FULL
            assert not cfg.hardware_scheduling
            assert not cfg.flags.sched
            assert not cfg.partition.enabled

    def test_hardharvest_full_stack(self):
        for cfg in (hardharvest_term(), hardharvest_block()):
            assert cfg.hardware_scheduling
            assert cfg.flags.sched and cfg.flags.queue and cfg.flags.ctxtsw
            assert cfg.flags.part and cfg.flags.flush and cfg.flags.repl
            assert cfg.flush_scope is FlushScope.HARVEST_REGION
            assert cfg.partition.enabled
            assert cfg.partition.replacement is ReplacementKind.HARDHARVEST
            assert cfg.partition.harvest_fraction == 0.5
            assert cfg.partition.eviction_candidates_fraction == 0.75

    def test_term_vs_block_triggers(self):
        assert hardharvest_term().trigger is HarvestTrigger.ON_TERMINATION
        assert hardharvest_block().trigger is HarvestTrigger.ON_BLOCK

    def test_build_system_round_trip(self):
        for kind in SystemKind:
            assert build_system(kind).name == kind.value


class TestMotivationalPresets:
    def test_fig4_idle_harvest_vm_no_flush(self):
        for cfg in (
            fig4_no_move(),
            fig4_kvm(HarvestTrigger.ON_BLOCK),
            fig4_opt(HarvestTrigger.ON_TERMINATION),
        ):
            assert not cfg.batch_active
        assert fig4_kvm(HarvestTrigger.ON_BLOCK).flush_scope is FlushScope.NONE
        # KVM costs are milliseconds; Opt costs are hundreds of µs.
        assert (
            fig4_kvm(HarvestTrigger.ON_BLOCK).software_costs.detach_attach_ns
            > 10 * fig4_opt(HarvestTrigger.ON_BLOCK).software_costs.detach_attach_ns
        )

    def test_fig5_flush_isolates_flushing(self):
        cfg = fig5_flush(HarvestTrigger.ON_TERMINATION)
        assert cfg.flush_scope is FlushScope.FULL
        assert cfg.software_costs.detach_attach_ns == 0
        assert cfg.software_costs.context_switch_ns == 0
        assert fig5_no_flush().flush_scope is FlushScope.NONE
        harvest = fig5_harvest(HarvestTrigger.ON_BLOCK)
        assert harvest.software_costs.detach_attach_ns > 0


class TestAblationLadders:
    def test_fig12_order_and_cumulative_flags(self):
        ladder = fig12_ladder()
        names = list(ladder)
        assert names == ["Harvest-Term", "Harvest-Block", "+Sched", "+Queue",
                         "+CtxtSw", "+Part", "+Flush", "HardHarvest"]
        # Flags accumulate monotonically along the hardware steps.
        flag_count = []
        for name in names[2:]:
            f = ladder[name].flags
            flag_count.append(sum([f.sched, f.queue, f.ctxtsw, f.part, f.flush, f.repl]))
        assert flag_count == sorted(flag_count)
        assert ladder["+Part"].partition.enabled
        assert ladder["+Part"].partition.replacement is ReplacementKind.LRU
        assert ladder["HardHarvest"].partition.replacement is ReplacementKind.HARDHARVEST

    def test_fig13_points(self):
        pts = fig13_points()
        assert pts["+CtxtSw"].flags.ctxtsw and not pts["+CtxtSw"].flags.sched
        assert pts["+Sched"].flags.sched and not pts["+Sched"].flags.ctxtsw
        both = pts["+CtxtSw&Sched"].flags
        assert both.sched and both.ctxtsw

    def test_fig15_never_harvests(self):
        for cfg in fig15_ladder().values():
            assert cfg.trigger is HarvestTrigger.NEVER
        repl = fig15_ladder()["+ReplPolicy"]
        assert repl.partition.replacement is ReplacementKind.HARDHARVEST
        assert not repl.partition.enabled  # no partitioning without harvest
