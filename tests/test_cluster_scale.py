"""Tests for the sharded cluster-scale layer.

The headline contract under test: a cluster-scale run is **bit-identical
regardless of worker count** — same digest at ``workers=1`` and
``workers=k`` for any seed, routing policy, or shard layout — and the
degenerate configuration (one epoch, nominal load) reproduces the legacy
``run_cluster`` results exactly.
"""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.cluster_scale import (
    ClusterScaleConfig,
    ClusterScaleResult,
    RoutingPolicy,
    rebalance_harvest,
    route_epoch,
    routing_rng,
    run_cluster_scale,
    service_mix,
)
from repro.config import SimulationConfig
from repro.core.experiment import run_cluster
from repro.core.export import (
    server_result_to_dict,
    write_cluster_scale_csv,
    write_cluster_scale_json,
)
from repro.core.presets import hardharvest_block, noharvest
from repro.sim.rng import derive_epoch_seed, derive_server_seed
from repro.workloads.suites import get_suite

FAST = SimulationConfig(accesses_per_segment=2)

SMALL = ClusterScaleConfig(
    servers=4, requests=1500, epochs=2, epoch_ms=10.0, warmup_ms=2.0,
    routing=RoutingPolicy.POWER_OF_TWO,
)


def _mix():
    system = hardharvest_block()
    profiles = get_suite(FAST.suite)[: system.cluster.primary_vms_per_server]
    return service_mix(profiles, system.cluster)


# ---------------------------------------------------------------------------
# Sharding determinism: the digest must not depend on worker count.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 23])
@pytest.mark.parametrize(
    "routing", [RoutingPolicy.ROUND_ROBIN, RoutingPolicy.POWER_OF_TWO]
)
def test_workers_bit_identical(seed, routing):
    sim = SimulationConfig(accesses_per_segment=2, seed=seed)
    cfg = ClusterScaleConfig(
        servers=3, requests=1200, epochs=2, epoch_ms=10.0, warmup_ms=2.0,
        routing=routing,
    )
    system = hardharvest_block()
    serial = run_cluster_scale(system, sim, cfg, workers=1)
    sharded = run_cluster_scale(system, sim, cfg, workers=2)
    assert serial.digest() == sharded.digest()
    assert serial.to_dict() == sharded.to_dict()


def test_uneven_shards_bit_identical():
    # 5 servers over 2 workers: chunks of unequal size, merged in server
    # order — the layout the reduction must be insensitive to.
    cfg = ClusterScaleConfig(
        servers=5, requests=2000, epochs=2, epoch_ms=10.0, warmup_ms=2.0,
        routing=RoutingPolicy.LEAST_LOADED,
    )
    system = hardharvest_block()
    d1 = run_cluster_scale(system, FAST, cfg, workers=1).digest()
    d2 = run_cluster_scale(system, FAST, cfg, workers=2).digest()
    d3 = run_cluster_scale(system, FAST, cfg, workers=3).digest()
    assert d1 == d2 == d3


def test_degenerate_matches_legacy_run_cluster():
    # One epoch, nominal load, no rebalancing possible: byte-identical to
    # the legacy run_cluster path, server by server.
    sim = SimulationConfig(
        horizon_ms=12.0, warmup_ms=3.0, accesses_per_segment=2, seed=5,
        servers_to_simulate=3,
    )
    system = noharvest()
    legacy = run_cluster(system, sim)
    scale = run_cluster_scale(
        system,
        sim,
        ClusterScaleConfig(servers=3, epochs=1, epoch_ms=12.0, warmup_ms=3.0),
    )
    assert len(scale.epochs) == 1
    servers = scale.epochs[0].cluster.servers
    assert len(servers) == len(legacy.servers)
    for ours, theirs in zip(servers, legacy.servers):
        assert server_result_to_dict(ours) == server_result_to_dict(theirs)


def test_seed_changes_digest():
    system = hardharvest_block()
    a = run_cluster_scale(system, SimulationConfig(accesses_per_segment=2,
                                                   seed=1), SMALL)
    b = run_cluster_scale(system, SimulationConfig(accesses_per_segment=2,
                                                   seed=2), SMALL)
    assert a.digest() != b.digest()


# ---------------------------------------------------------------------------
# RNG derivation.
# ---------------------------------------------------------------------------
def test_epoch_seed_zero_is_identity():
    assert derive_epoch_seed(123, 0) == 123


def test_epoch_seeds_distinct():
    seeds = {derive_epoch_seed(7, e) for e in range(6)}
    assert len(seeds) == 6


def test_epoch_seed_rejects_negative():
    with pytest.raises(ValueError):
        derive_epoch_seed(0, -1)


def test_server_seed_stride():
    assert derive_server_seed(3, 0) == 3
    assert derive_server_seed(3, 2) - derive_server_seed(3, 1) == 7919


# ---------------------------------------------------------------------------
# Routing policies.
# ---------------------------------------------------------------------------
def test_round_robin_counts_even():
    routing = route_epoch(
        RoutingPolicy.ROUND_ROBIN, routing_rng(0, 0), 4, 1002, _mix(),
        np.zeros(4),
    )
    assert int(routing.counts.sum()) == 1002
    assert routing.counts.max() - routing.counts.min() <= 1


def test_routing_is_deterministic():
    for policy in RoutingPolicy:
        a = route_epoch(policy, routing_rng(9, 1), 5, 500, _mix(), np.zeros(5))
        b = route_epoch(policy, routing_rng(9, 1), 5, 500, _mix(), np.zeros(5))
        assert a.to_dict() == b.to_dict()


def test_least_loaded_balances_cost():
    mix = _mix()
    rng = routing_rng(0, 0)
    ll = route_epoch(RoutingPolicy.LEAST_LOADED, rng, 6, 3000, mix,
                     np.zeros(6))
    assert int(ll.counts.sum()) == 3000
    # The omniscient policy balances estimated work almost perfectly.
    assert ll.imbalance < 1.01


def test_p2c_beats_nothing_and_sums():
    routing = route_epoch(
        RoutingPolicy.POWER_OF_TWO, routing_rng(0, 0), 6, 3000, _mix(),
        np.zeros(6),
    )
    assert int(routing.counts.sum()) == 3000
    assert routing.counts.min() > 0
    # Two choices keep imbalance far below worst-case random assignment.
    assert routing.imbalance < 1.2


def test_carryover_steers_load_away():
    mix = _mix()
    hot = np.zeros(4)
    hot[0] = 1e9  # server 0 ended the last epoch extremely hot
    routing = route_epoch(
        RoutingPolicy.LEAST_LOADED, routing_rng(0, 1), 4, 2000, mix, hot
    )
    assert routing.counts[0] == 0
    assert int(routing.counts.sum()) == 2000


def test_route_epoch_rejects_negative():
    with pytest.raises(ValueError):
        route_epoch(RoutingPolicy.ROUND_ROBIN, routing_rng(0, 0), 2, -1,
                    _mix(), np.zeros(2))


# ---------------------------------------------------------------------------
# Harvest rebalancing.
# ---------------------------------------------------------------------------
def test_rebalance_moves_hot_to_cold():
    decision = rebalance_harvest(
        alloc=[4, 4, 4, 4], utilization=[0.95, 0.2, 0.5, 0.5],
        cores_per_server=36, min_cores=1, max_cores=6,
        threshold=0.05, max_moves=8,
    )
    assert decision.moves
    assert all(src == 0 and dst == 1 for src, dst in decision.moves[:1])
    assert sum(decision.alloc) == 16  # conserved


def test_rebalance_respects_bounds():
    decision = rebalance_harvest(
        alloc=[2, 2], utilization=[1.0, 0.0],
        cores_per_server=36, min_cores=1, max_cores=2,
        threshold=0.01, max_moves=100,
    )
    # Receiver is already at max_cores: nothing can move.
    assert decision.moves == []
    assert decision.alloc == [2, 2]


def test_rebalance_below_threshold_is_noop():
    decision = rebalance_harvest(
        alloc=[3, 3], utilization=[0.52, 0.50],
        cores_per_server=36, min_cores=1, max_cores=6,
        threshold=0.05, max_moves=8,
    )
    assert decision.moves == []


def test_rebalance_caps_moves():
    decision = rebalance_harvest(
        alloc=[6, 1], utilization=[1.0, 0.0],
        cores_per_server=36, min_cores=1, max_cores=6,
        threshold=0.01, max_moves=2,
    )
    assert len(decision.moves) == 2
    assert decision.alloc == [4, 3]


def test_rebalance_ties_break_low_index():
    decision = rebalance_harvest(
        alloc=[3, 3, 3], utilization=[0.9, 0.1, 0.1],
        cores_per_server=36, min_cores=1, max_cores=6,
        threshold=0.05, max_moves=1,
    )
    assert decision.moves == [(0, 1)]


def test_rebalance_length_mismatch():
    with pytest.raises(ValueError):
        rebalance_harvest([3, 3], [0.5], 36, 1, 6, 0.05, 8)


# ---------------------------------------------------------------------------
# Config validation.
# ---------------------------------------------------------------------------
def test_config_epoch_request_split():
    cfg = ClusterScaleConfig(servers=2, requests=10, epochs=3)
    assert [cfg.epoch_requests(e) for e in range(3)] == [4, 3, 3]
    assert ClusterScaleConfig(servers=2).epoch_requests(0) is None


@pytest.mark.parametrize("kwargs", [
    {"servers": 0},
    {"epochs": 0},
    {"requests": 0},
    {"epoch_ms": 0.0},
    {"warmup_ms": 100.0},  # >= epoch_ms
    {"rebalance_max_moves": -1},
    {"harvest_min_cores": 0},
    {"harvest_min_cores": 5, "harvest_max_cores": 4},
])
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        ClusterScaleConfig(**kwargs)


def test_runner_validates_core_budget():
    with pytest.raises(ValueError):
        run_cluster_scale(
            hardharvest_block(), FAST,
            ClusterScaleConfig(servers=1, harvest_max_cores=100),
        )


# ---------------------------------------------------------------------------
# Serialization, export, digest stability.
# ---------------------------------------------------------------------------
def test_result_roundtrip_preserves_digest(tmp_path):
    system = hardharvest_block()
    result = run_cluster_scale(system, FAST, SMALL, workers=1)
    clone = ClusterScaleResult.from_dict(result.to_dict())
    assert clone.digest() == result.digest()
    assert clone.summary_dict() == result.summary_dict()

    json_path = tmp_path / "cluster.json"
    write_cluster_scale_json(str(json_path), result)
    on_disk = ClusterScaleResult.from_dict(json.loads(json_path.read_text()))
    assert on_disk.digest() == result.digest()

    csv_path = tmp_path / "cluster.csv"
    write_cluster_scale_csv(str(csv_path), result)
    lines = csv_path.read_text().strip().splitlines()
    # header + one row per (epoch, server)
    assert len(lines) == 1 + SMALL.epochs * SMALL.servers


def test_rebalance_alloc_applies_next_epoch():
    # With a tight core budget the first barrier moves capacity; epoch 1
    # must then run with the post-move allocation.
    from dataclasses import replace

    base = hardharvest_block()
    # Start below the rebalancer's ceiling so receivers exist.
    system = replace(
        base, cluster=replace(base.cluster, harvest_vm_base_cores=2)
    )
    cfg = ClusterScaleConfig(
        servers=3, requests=2400, epochs=2, epoch_ms=10.0, warmup_ms=2.0,
        routing=RoutingPolicy.LEAST_LOADED, rebalance_threshold=0.0,
        harvest_min_cores=1, harvest_max_cores=4,
    )
    result = run_cluster_scale(system, FAST, cfg, workers=1)
    first = result.epochs[0]
    if first.rebalance and first.rebalance["moves"]:
        assert result.epochs[1].harvest_alloc == first.rebalance["alloc"]
    assert sum(result.epochs[1].harvest_alloc) == sum(first.harvest_alloc)


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------
def test_cli_cluster_scale_stats_json(capsys, tmp_path):
    stats_path = tmp_path / "stats.json"
    rc = main([
        "cluster", "--servers", "2", "--requests", "600", "--epochs", "2",
        "--routing", "round-robin", "--horizon-ms", "25",
        "--accesses", "2", "--seed", "3", "--no-cache",
        "--stats-json", str(stats_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "digest" in out
    stats = json.loads(stats_path.read_text())
    assert stats["servers"] == 2
    assert stats["epochs"] == 2
    assert stats["routing"] == "round-robin"
    assert len(stats["digest"]) == 64
    assert stats["requests_routed"] == 600


def test_cli_cluster_legacy_path_unchanged(capsys):
    # No scale flags: the original single-shot cluster output.
    rc = main(["cluster", "--system", "NoHarvest", "--servers", "2",
               "--horizon-ms", "60", "--accesses", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "across 2 servers" in out
