"""Tests for the fault-injection subsystem: spec validation, config
serialization, cache-key participation, and per-kind injector behaviour."""

from dataclasses import replace

import pytest

from repro.config import SimulationConfig
from repro.core.experiment import run_server_raw
from repro.core.presets import hardharvest_block, noharvest
from repro.core.serialize import from_dict, to_dict
from repro.faults import (
    ClientPolicy,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    get_scenario,
    scenario_names,
)

FAST = SimulationConfig(horizon_ms=60, warmup_ms=10, accesses_per_segment=8, seed=17)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
def test_fault_spec_validates_window():
    with pytest.raises(ValueError):
        FaultSpec(kind=FaultKind.SERVER_CRASH, start_ms=-1.0, duration_ms=5.0)
    with pytest.raises(ValueError):
        FaultSpec(kind=FaultKind.SERVER_CRASH, start_ms=1.0, duration_ms=0.0)


def test_fault_spec_kind_specific_magnitudes():
    with pytest.raises(ValueError):  # loss probability > 1
        FaultSpec(kind=FaultKind.PACKET_LOSS, start_ms=0, duration_ms=1,
                  magnitude=1.5)
    with pytest.raises(ValueError):  # slowdown must be >= 1x
        FaultSpec(kind=FaultKind.CORE_SLOWDOWN, start_ms=0, duration_ms=1,
                  magnitude=0.5)
    with pytest.raises(ValueError):  # brownout fraction in (0, 1]
        FaultSpec(kind=FaultKind.BACKEND_BROWNOUT, start_ms=0, duration_ms=1,
                  magnitude=2.0)
    with pytest.raises(TypeError):
        FaultSpec(kind="server-crash", start_ms=0, duration_ms=1)


def test_fault_spec_ns_windows():
    spec = FaultSpec(kind=FaultKind.SERVER_CRASH, start_ms=1.5, duration_ms=2.0)
    assert spec.start_ns == 1_500_000
    assert spec.end_ns == 3_500_000


def test_fault_schedule_rejects_non_specs():
    with pytest.raises(TypeError):
        FaultSchedule(events=("not a spec",))


def test_fault_schedule_describe_lists_every_event():
    sched = get_scenario("crash-storm", 100.0).schedule
    text = sched.describe()
    assert len(sched) == 3
    assert text.count("server-crash") == 3
    assert FaultSchedule().describe() == "  (no faults)"


def test_client_policy_validation():
    with pytest.raises(ValueError):
        ClientPolicy(timeout_ms=0)
    with pytest.raises(ValueError):
        ClientPolicy(backoff_jitter=1.0)
    with pytest.raises(ValueError):
        ClientPolicy(backoff_multiplier=0.5)
    with pytest.raises(ValueError):
        ClientPolicy(hedge_ms=0.0)
    assert ClientPolicy(timeout_ms=10.0).effective_slo_ms == 10.0
    assert ClientPolicy(timeout_ms=10.0, slo_ms=5.0).effective_slo_ms == 5.0


def test_scenarios_expand_for_any_horizon():
    for name in scenario_names():
        scenario = get_scenario(name, 60.0)
        assert scenario.name == name
        assert len(scenario.schedule) > 0
        assert scenario.client.timeout_ms > 0
    with pytest.raises(KeyError):
        get_scenario("not-a-scenario", 60.0)
    with pytest.raises(ValueError):
        get_scenario("crash-storm", 0.0)


# ----------------------------------------------------------------------
# Serialization + cache key
# ----------------------------------------------------------------------
def test_fault_config_round_trips_through_serialize():
    scenario = get_scenario("packet-loss", 60.0)
    cfg = replace(FAST, faults=scenario.schedule, client=scenario.client)
    assert from_dict(to_dict(cfg)) == cfg


def test_fault_spec_changes_cache_key():
    import tempfile

    from repro.parallel import ResultCache, SweepPoint

    cache = ResultCache(tempfile.mkdtemp())
    scenario = get_scenario("crash-storm", 60.0)
    base = replace(FAST, faults=scenario.schedule, client=scenario.client)

    def key_for(simcfg):
        point = SweepPoint(label="p", system=noharvest(), sim=simcfg)
        return cache.key(point.payload())

    assert key_for(base) == key_for(replace(base))  # unchanged -> same key
    # Any fault parameter change is a different key (cache miss).
    bumped = replace(
        scenario.schedule.events[0],
        duration_ms=scenario.schedule.events[0].duration_ms + 1.0,
    )
    changed = replace(
        base,
        faults=FaultSchedule(events=(bumped,) + scenario.schedule.events[1:]),
    )
    assert key_for(changed) != key_for(base)
    # So is a client-policy change.
    tighter = replace(base, client=replace(scenario.client, max_retries=1))
    assert key_for(tighter) != key_for(base)
    # And faults=None (legacy) differs from faults present.
    assert key_for(FAST) != key_for(base)


# ----------------------------------------------------------------------
# Injector behaviour per kind
# ----------------------------------------------------------------------
def _run_scenario(name, system, **cfg_kwargs):
    scenario = get_scenario(name, FAST.horizon_ms)
    cfg = replace(FAST, faults=scenario.schedule, client=scenario.client,
                  **cfg_kwargs)
    return run_server_raw(system, cfg)


def test_server_crash_kills_and_restarts():
    sim = _run_scenario("crash-storm", noharvest())
    assert sim.counters["faults_crashes"] == 3
    assert sim.counters["faults_restarts"] == 3
    res = sim.resilience_summary()
    # Crashes force retries: clients worked harder than one attempt per
    # logical request, and some requests were resolved by a retry.
    assert res["retry_amplification"] > 1.0
    assert res["retries"] > 0
    assert res["completed"] + res["failed"] == res["offered"]


def test_packet_loss_drops_and_delays():
    sim = _run_scenario("packet-loss", noharvest())
    assert sim.counters["faults_arrivals_dropped"] > 0
    assert sim.counters["faults_net_delayed"] > 0
    res = sim.resilience_summary()
    assert res["hedges"] > 0  # the scenario hedges at 15 ms
    assert res["completed"] + res["failed"] == res["offered"]


def test_core_faults_slow_the_affected_window():
    clean = run_server_raw(noharvest(), FAST)
    sim = _run_scenario("slow-cores", noharvest())
    assert sim.counters["faults_injected"] == 3
    # 3x slowdown plus two stalled cores must show up in tail latency.
    assert sim.latency_all.p99() > clean.latency_all.p99()


def test_rq_chunk_fail_hardware_vs_software():
    hw = _run_scenario("rq-degrade", hardharvest_block())
    assert hw.counters["faults_rq_chunks_shed"] > 0
    assert hw.counters["faults_rq_noop"] == 0
    sw = _run_scenario("rq-degrade", noharvest())
    assert sw.counters["faults_rq_noop"] > 0
    assert sw.counters["faults_rq_chunks_shed"] == 0


def test_brownout_completes_and_recovers():
    sim = _run_scenario("brownout", noharvest())
    assert sim.counters["faults_injected"] == 2
    # Backend capacity is restored after the windows: nominal workers.
    for svc in sim.backends.services.values():
        assert svc.workers == svc.nominal_workers
    res = sim.resilience_summary()
    assert res["completed"] + res["failed"] == res["offered"]


def test_faults_without_client_still_terminates():
    """Injector-only config (no ClientPolicy): lost requests are counted
    and the run still drains."""
    scenario = get_scenario("crash-storm", FAST.horizon_ms)
    cfg = replace(FAST, faults=scenario.schedule)  # client stays None
    sim = run_server_raw(noharvest(), cfg)
    assert sim.counters["faults_crashes"] == 3
    assert sim.counters["requests_lost"] > 0
    res = sim.resilience_summary()
    assert res["failed"] == float(sim.counters["requests_lost"])
    # Drained: only the steady-state periodic events (batch units, agent
    # tick) survive the finish flag — no backlog of real work.
    assert sim.sim.pending_live_events <= 8


def test_cancelled_retry_timers_are_not_pending_work():
    """A retry-heavy faulted run leaves a heap full of cancelled deadline
    timers; ``pending_live_events`` sees through them while
    ``pending_events`` (raw heap size) does not — the run loop and drain
    assertions must use the former."""
    scenario = get_scenario("crash-storm", FAST.horizon_ms)
    cfg = replace(FAST, faults=scenario.schedule, client=scenario.client)
    sim = run_server_raw(noharvest(), cfg)
    assert sim.sim.pending_events > sim.sim.pending_live_events
    assert sim.sim.pending_live_events <= 8


def test_no_faults_leaves_legacy_path_untouched():
    a = run_server_raw(noharvest(), FAST)
    assert a.injector is None and a.client is None
    assert a.resilience_summary() == {}
