"""Tests for result export (JSON/CSV artifacts)."""

import csv
import json

import pytest

from repro.config import SimulationConfig
from repro.core.experiment import run_server, run_server_raw, summarize
from repro.core.export import (
    latency_rows,
    result_to_json,
    write_json,
    write_latency_csv,
    write_samples_csv,
)
from repro.core.presets import noharvest

FAST = SimulationConfig(horizon_ms=60, warmup_ms=10, accesses_per_segment=8, seed=2)


@pytest.fixture(scope="module")
def result():
    return run_server(noharvest(), FAST)


def test_result_to_json_complete(result):
    data = result_to_json(result)
    assert data["system"] == "NoHarvest"
    assert set(data["latency_ms"]) == set(result.p99_ms)
    assert data["latency_ms"]["Text"]["p99"] == result.p99_ms["Text"]
    assert "execution" in data["breakdown_ms"]["Text"]
    json.dumps(data)  # serializable


def test_write_json_round_trip(result, tmp_path):
    path = tmp_path / "results.json"
    write_json(str(path), [result])
    loaded = json.loads(path.read_text())
    assert len(loaded) == 1
    assert loaded[0]["avg_busy_cores"] == pytest.approx(result.avg_busy_cores)


def test_latency_csv(result, tmp_path):
    path = tmp_path / "lat.csv"
    write_latency_csv(str(path), [result])
    with open(path) as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == len(result.p99_ms)
    text_row = next(r for r in rows if r["service"] == "Text")
    assert float(text_row["p99_ms"]) == pytest.approx(result.p99_ms["Text"])


def test_latency_rows_empty_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_latency_csv(str(tmp_path / "x.csv"), [])
    assert latency_rows([]) == []


def test_samples_csv(tmp_path):
    sim = run_server_raw(noharvest(), FAST)
    path = tmp_path / "samples.csv"
    n = write_samples_csv(str(path), sim)
    expected = sum(rec.count for rec in sim.latency.values())
    assert n == expected
    with open(path) as fh:
        rows = list(csv.reader(fh))
    assert rows[0] == ["service", "latency_ns"]
    assert len(rows) == expected + 1
    # Summaries derived from the same sim agree with the export volume.
    res = summarize(sim)
    assert set(r[0] for r in rows[1:]) == set(res.p99_ms)
