"""Tests for workload suites (socialnet default, hotel generalization)."""

import pytest

from repro.config import SimulationConfig
from repro.core.experiment import run_server, run_server_raw
from repro.core.presets import hardharvest_block, noharvest
from repro.workloads.suites import HOTEL_BACKENDS, HOTEL_SERVICES, get_suite

FAST = SimulationConfig(
    horizon_ms=70, warmup_ms=10, accesses_per_segment=8, seed=8, suite="hotel"
)


class TestSuiteRegistry:
    def test_default_is_socialnet(self):
        assert get_suite("socialnet")[0].name == "Text"
        assert SimulationConfig().suite == "socialnet"

    def test_hotel_suite_shape(self):
        assert len(HOTEL_SERVICES) == 8
        names = [p.name for p in HOTEL_SERVICES]
        assert "Search" in names and "Reserve" in names
        # Every hotel service has a backend route.
        assert set(HOTEL_BACKENDS) == set(names)

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            get_suite("banking")

    def test_hotel_services_are_microsecond_scale(self):
        for p in HOTEL_SERVICES:
            assert 50 <= p.mean_exec_us <= 700


class TestHotelRuns:
    def test_engine_runs_hotel_suite(self):
        sim = run_server_raw(noharvest(), FAST)
        assert {vm.name for vm in sim.primary_vms} == {
            p.name for p in HOTEL_SERVICES
        }
        assert sim._completions == sim._target_completions
        # Backends receive calls from the hotel routing.
        stats = sim.backends.stats()
        assert stats["mongodb"]["calls"] > 0  # Reserve/Review
        assert stats["redis"]["calls"] > 0    # Search/Geo/Rate

    def test_hardharvest_wins_generalize_to_hotel(self):
        base = run_server(noharvest(), FAST)
        hh = run_server(hardharvest_block(), FAST)
        assert hh.avg_busy_cores > 2.5 * base.avg_busy_cores
        assert hh.avg_p99_ms() < base.avg_p99_ms() * 1.1
        assert hh.batch_units_per_s > 1.5 * base.batch_units_per_s
