"""Assertions CI runs against ``--stats-json`` / ``--json`` artifacts.

The smoke jobs used to grep human-oriented CLI output ("10 from cache",
"100% hit rate") — brittle against copy changes and silent about *why* a
check failed.  Each subcommand here reads the machine-readable stats file
the CLI writes and asserts the same invariants explicitly:

* ``cache-stats FILE --expect cold|warm`` — a cold run computed every
  point (zero hits); a warm run served every point from the cache
  (hit rate 1.0, zero computed).
* ``digests-equal FILE FILE...`` — every stats file carries the same
  ``digest`` (the sharding-determinism gate for ``cluster-smoke``).
* ``fault-counters FILE`` — the exported fault-scenario JSON carries
  sane degradation counters for every system.
* ``chaos-stats FILE...`` — each chaos-soak record proves SIGKILL
  recovery was bit-identical (resumed digest == uninterrupted digest)
  and that the resume actually replayed checkpoints; with several files,
  they must all share one uninterrupted digest (worker-count parity).
* ``metrics-text FILE`` — the scraped ``/metrics`` exposition is valid
  Prometheus text and carries the service's required metric families.
* ``warm-speedup COLD WARM`` — the warm re-run of the same config hit
  the cache for (almost) every point and beat the cold run's wall time
  by at least ``--min-ratio`` (the data-plane warm-path gate).
* ``service-stats FILE`` — the ``service_smoke.py`` record proves the
  API served digests byte-equal to the direct CLI, deduped duplicate
  submissions, and exited 0 on SIGTERM.

Exit code 0 on success; 1 with a diagnostic on the first violated
invariant.
"""

from __future__ import annotations

import argparse
import json
import re
import sys


def _load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def check_cache_stats(args: argparse.Namespace) -> int:
    stats = _load(args.file)
    cache = stats.get("cache")
    if cache is None:
        return _fail(f"{args.file}: run recorded no cache statistics")
    if args.expect == "cold":
        if cache["hits"] != 0:
            return _fail(f"cold run had {cache['hits']} cache hit(s): {cache}")
        if stats.get("computed", stats.get("points")) in (0, None):
            return _fail(f"cold run computed nothing: {stats}")
    else:  # warm
        if cache["hit_rate"] != 1.0:
            return _fail(
                f"warm run hit rate {cache['hit_rate']}, wanted 1.0: {cache}"
            )
        if stats.get("computed", 0) != 0:
            return _fail(
                f"warm run recomputed {stats['computed']} point(s): {stats}"
            )
        if stats.get("from_cache", 0) == 0 and "from_cache" in stats:
            return _fail(f"warm run served nothing from cache: {stats}")
    print(f"OK [{args.expect}] {args.file}: {cache}")
    return 0


def check_digests_equal(args: argparse.Namespace) -> int:
    digests = {}
    for path in args.files:
        stats = _load(path)
        digest = stats.get("digest")
        if not digest:
            return _fail(f"{path}: no digest recorded")
        digests[path] = digest
    values = set(digests.values())
    if len(values) != 1:
        lines = "\n".join(f"  {p}: {d}" for p, d in digests.items())
        return _fail(f"digests differ across runs:\n{lines}")
    print(f"OK: {len(digests)} run(s) share digest {values.pop()}")
    return 0


def check_fault_counters(args: argparse.Namespace) -> int:
    results = _load(args.file)
    expected = set(args.systems.split(",")) if args.systems else None
    if expected is not None and set(results) != expected:
        return _fail(f"systems {sorted(results)} != expected {sorted(expected)}")
    for name, result in results.items():
        res = result["resilience"]
        if res["retry_amplification"] < 1.0:
            return _fail(f"{name}: retry_amplification {res} < 1.0")
        if not 0.0 < res["goodput"] <= 1.0:
            return _fail(f"{name}: goodput out of range: {res}")
        if res["retries"] <= 0:
            return _fail(f"{name}: no retries recorded: {res}")
        counters = result["counters"]
        if counters.get("faults_crashes") != args.crashes:
            return _fail(
                f"{name}: faults_crashes {counters.get('faults_crashes')} "
                f"!= {args.crashes}"
            )
        if counters.get("faults_restarts") != args.crashes:
            return _fail(
                f"{name}: faults_restarts {counters.get('faults_restarts')} "
                f"!= {args.crashes}"
            )
    print("fault counters OK:",
          {n: r["resilience"]["goodput"] for n, r in results.items()})
    return 0


def check_chaos_stats(args: argparse.Namespace) -> int:
    reference_digests = {}
    for path in args.files:
        record = _load(path)
        if not record.get("digests_equal"):
            return _fail(
                f"{path}: resumed digest {record.get('resumed_digest')} != "
                f"uninterrupted {record.get('uninterrupted_digest')}"
            )
        if record["resumed_digest"] != record["uninterrupted_digest"]:
            return _fail(f"{path}: digests_equal flag lies: {record}")
        if record.get("resumed_from_epoch", 0) < 1:
            return _fail(
                f"{path}: resume started from epoch "
                f"{record.get('resumed_from_epoch')} — no checkpoint was "
                f"actually replayed"
            )
        if not record.get("killed"):
            # Still digest-identical, but the soak lost its teeth; note it
            # loudly so a chronically-too-fast victim gets retuned.
            print(f"WARN: {path}: victim finished before the SIGKILL; "
                  f"resume was a full checkpoint replay")
        if not record.get("resilience_curve"):
            return _fail(f"{path}: no per-epoch resilience curve recorded")
        reference_digests[path] = record["uninterrupted_digest"]
    if len(set(reference_digests.values())) != 1:
        lines = "\n".join(f"  {p}: {d}" for p, d in reference_digests.items())
        return _fail(
            f"uninterrupted digests differ across worker counts:\n{lines}"
        )
    print(f"OK: {len(args.files)} chaos record(s), recovery bit-identical, "
          f"shared digest {next(iter(reference_digests.values()))[:16]}…")
    return 0


#: One valid line of Prometheus text exposition: a HELP/TYPE comment or
#: ``name{labels} value``.  Matches the regex the service tests use.
_METRIC_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.e+-]+(inf|nan)?)$"
)

#: Metric families the service must always expose, whatever its state.
_REQUIRED_METRICS = (
    "repro_service_queue_depth",
    "repro_service_jobs{state=",
    "repro_service_workers",
    "repro_service_jobs_evicted_total",
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_cache_memory_hits_total",
)


def check_warm_speedup(args: argparse.Namespace) -> int:
    cold = _load(args.cold)
    warm = _load(args.warm)
    cache = warm.get("cache")
    if cache is None:
        return _fail(f"{args.warm}: warm run recorded no cache statistics")
    if cache.get("hit_rate", 0.0) < args.min_hit_rate:
        return _fail(
            f"{args.warm}: warm hit rate {cache.get('hit_rate')} < "
            f"{args.min_hit_rate}: {cache}"
        )
    for path, stats in ((args.cold, cold), (args.warm, warm)):
        if not stats.get("elapsed_s"):
            return _fail(f"{path}: no elapsed_s recorded")
    ratio = cold["elapsed_s"] / warm["elapsed_s"]
    if ratio < args.min_ratio:
        return _fail(
            f"warm run only {ratio:.2f}x faster than cold "
            f"({cold['elapsed_s']:.2f}s -> {warm['elapsed_s']:.2f}s), "
            f"wanted >= {args.min_ratio}x"
        )
    if cold.get("digest") and cold.get("digest") != warm.get("digest"):
        return _fail(
            f"warm digest {warm.get('digest')} != cold {cold['digest']}"
        )
    print(f"OK: warm {ratio:.1f}x faster than cold "
          f"({cold['elapsed_s']:.2f}s -> {warm['elapsed_s']:.2f}s), "
          f"hit rate {cache['hit_rate']:.3f}, digests match")
    return 0


def check_metrics_text(args: argparse.Namespace) -> int:
    with open(args.file) as fh:
        text = fh.read()
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return _fail(f"{args.file}: empty metrics exposition")
    for line in lines:
        if not _METRIC_LINE.match(line):
            return _fail(f"{args.file}: invalid exposition line: {line!r}")
    for required in _REQUIRED_METRICS:
        if required not in text:
            return _fail(f"{args.file}: missing metric family {required!r}")
    samples = sum(1 for line in lines if not line.startswith("#"))
    print(f"OK: {args.file}: {samples} sample(s), all lines valid, "
          f"{len(_REQUIRED_METRICS)} required families present")
    return 0


def check_service_stats(args: argparse.Namespace) -> int:
    record = _load(args.file)
    for flag in ("dedupe_same_id", "dedupe_not_recreated",
                 "sweep_digests_equal", "cluster_digests_equal"):
        if not record.get(flag):
            return _fail(
                f"{args.file}: {flag} is {record.get(flag)!r} "
                f"(sweep {record.get('sweep_digest_service')} vs "
                f"{record.get('sweep_digest_cli')}, cluster "
                f"{record.get('cluster_digest_service')} vs "
                f"{record.get('cluster_digest_cli')})"
            )
    if record.get("server_exit") != 0:
        return _fail(
            f"{args.file}: server exited {record.get('server_exit')} on "
            f"SIGTERM, wanted 0; log tail:\n{record.get('server_log_tail')}"
        )
    if record.get("soak") and record.get("storm_unique_ids") != 1:
        return _fail(
            f"{args.file}: duplicate storm produced "
            f"{record.get('storm_unique_ids')} job id(s), wanted 1"
        )
    if not record.get("ok"):
        return _fail(f"{args.file}: record not ok: {record}")
    print(f"OK: {args.file}: service digests match CLI "
          f"(sweep {record['sweep_digest_service'][:16]}…, "
          f"cluster {record['cluster_digest_service'][:16]}…), "
          f"dedupe held, server exit 0")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("cache-stats", help="assert cold/warm cache behavior")
    p.add_argument("file")
    p.add_argument("--expect", choices=["cold", "warm"], required=True)
    p.set_defaults(func=check_cache_stats)

    p = sub.add_parser("digests-equal",
                       help="assert all stats files share one digest")
    p.add_argument("files", nargs="+")
    p.set_defaults(func=check_digests_equal)

    p = sub.add_parser("fault-counters",
                       help="assert degradation counters in faults JSON")
    p.add_argument("file")
    p.add_argument("--systems", default="NoHarvest,HardHarvest-Block",
                   help="comma-separated expected system names")
    p.add_argument("--crashes", type=int, default=3,
                   help="expected crash/restart count per system")
    p.set_defaults(func=check_fault_counters)

    p = sub.add_parser("chaos-stats",
                       help="assert SIGKILL-and-resume digest parity")
    p.add_argument("files", nargs="+")
    p.set_defaults(func=check_chaos_stats)

    p = sub.add_parser("warm-speedup",
                       help="assert warm-run hit rate + wall-time ratio")
    p.add_argument("cold")
    p.add_argument("warm")
    p.add_argument("--min-hit-rate", type=float, default=0.99)
    p.add_argument("--min-ratio", type=float, default=3.0)
    p.set_defaults(func=check_warm_speedup)

    p = sub.add_parser("metrics-text",
                       help="validate a scraped /metrics exposition")
    p.add_argument("file")
    p.set_defaults(func=check_metrics_text)

    p = sub.add_parser("service-stats",
                       help="assert the service-smoke record's invariants")
    p.add_argument("file")
    p.set_defaults(func=check_service_stats)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
